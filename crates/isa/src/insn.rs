//! µop instruction definitions.

use crate::regs::{Gpr, PredReg};
use std::fmt;

/// An arithmetic/logic operation on general-purpose registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum AluOp {
    Add,
    Sub,
    And,
    Or,
    Xor,
    Shl,
    Shr,
    Mul,
    Div,
}

impl AluOp {
    /// Mnemonic used by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
        }
    }

    /// Applies the operation to two 64-bit values (wrapping semantics;
    /// division by zero yields zero, as a trap-free ISA choice).
    #[must_use]
    pub fn apply(self, a: i64, b: i64) -> i64 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::And => a & b,
            AluOp::Or => a | b,
            AluOp::Xor => a ^ b,
            AluOp::Shl => a.wrapping_shl((b & 63) as u32),
            AluOp::Shr => a.wrapping_shr((b & 63) as u32),
            AluOp::Mul => a.wrapping_mul(b),
            AluOp::Div => {
                if b == 0 {
                    0
                } else {
                    a.wrapping_div(b)
                }
            }
        }
    }
}

/// A comparison that writes a predicate register (signed semantics).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum CmpOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

impl CmpOp {
    /// Mnemonic suffix used by the disassembler (`cmp.lt` etc.).
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::Lt => "lt",
            CmpOp::Le => "le",
            CmpOp::Gt => "gt",
            CmpOp::Ge => "ge",
        }
    }

    /// Evaluates the comparison.
    #[must_use]
    pub fn apply(self, a: i64, b: i64) -> bool {
        match self {
            CmpOp::Eq => a == b,
            CmpOp::Ne => a != b,
            CmpOp::Lt => a < b,
            CmpOp::Le => a <= b,
            CmpOp::Gt => a > b,
            CmpOp::Ge => a >= b,
        }
    }

    /// The comparison computing the complement result.
    #[must_use]
    pub fn negate(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::Lt => CmpOp::Ge,
            CmpOp::Le => CmpOp::Gt,
            CmpOp::Gt => CmpOp::Le,
            CmpOp::Ge => CmpOp::Lt,
        }
    }
}

/// A boolean operation between two predicate registers.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
#[allow(missing_docs)]
pub enum PredOp {
    And,
    Or,
    Xor,
}

impl PredOp {
    /// Mnemonic used by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            PredOp::And => "pand",
            PredOp::Or => "por",
            PredOp::Xor => "pxor",
        }
    }

    /// Evaluates the operation.
    #[must_use]
    pub fn apply(self, a: bool, b: bool) -> bool {
        match self {
            PredOp::And => a && b,
            PredOp::Or => a || b,
            PredOp::Xor => a ^ b,
        }
    }
}

/// The second source of an ALU or compare µop: a register or a small
/// immediate.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Operand {
    /// A general-purpose register source.
    Reg(Gpr),
    /// A sign-extended immediate source.
    Imm(i32),
}

impl Operand {
    /// Convenience constructor for a register operand.
    ///
    /// # Panics
    ///
    /// Panics if `index` is not a valid GPR index.
    #[must_use]
    pub fn reg(index: u8) -> Operand {
        Operand::Reg(Gpr::new(index))
    }

    /// Convenience constructor for an immediate operand.
    #[must_use]
    pub fn imm(value: i32) -> Operand {
        Operand::Imm(value)
    }

    /// The register named by this operand, if any.
    #[must_use]
    pub fn as_reg(self) -> Option<Gpr> {
        match self {
            Operand::Reg(r) => Some(r),
            Operand::Imm(_) => None,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(i) => write!(f, "{i}"),
        }
    }
}

/// The wish-branch hint carried by a conditional branch (the `wtype` field of
/// the paper's Fig. 7 instruction format).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum WishType {
    /// A forward branch guarding a predicated hammock (`wish.jump`).
    Jump,
    /// A branch control-flow dependent on a preceding wish jump/join
    /// (`wish.join`).
    Join,
    /// A backward loop branch over a predicated loop body (`wish.loop`).
    Loop,
}

impl WishType {
    /// Mnemonic suffix used by the disassembler.
    #[must_use]
    pub fn mnemonic(self) -> &'static str {
        match self {
            WishType::Jump => "jump",
            WishType::Join => "join",
            WishType::Loop => "loop",
        }
    }
}

/// The control-transfer flavour of a branch µop.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum BranchKind {
    /// Conditional direct branch: taken when the predicate register equals
    /// `sense`.
    Cond {
        /// Condition predicate register.
        pred: PredReg,
        /// Direction sense: `true` = branch when the predicate is TRUE
        /// (like `br p1, T`), `false` = branch when it is FALSE
        /// (like `br !p1, T`).
        sense: bool,
    },
    /// Unconditional direct branch.
    Uncond,
    /// Direct call; writes the return µop index into [`Gpr::LINK`].
    Call,
    /// Return: an indirect jump through [`Gpr::LINK`], predicted with the
    /// return-address stack.
    Ret,
    /// Indirect jump through a general-purpose register, predicted with the
    /// indirect target cache.
    Indirect {
        /// Register holding the target µop index.
        target: Gpr,
    },
}

impl BranchKind {
    /// Convenience constructor for a conditional branch.
    #[must_use]
    pub fn cond(pred: PredReg, sense: bool) -> BranchKind {
        BranchKind::Cond { pred, sense }
    }

    /// Whether this is a conditional direct branch.
    #[must_use]
    pub fn is_conditional(self) -> bool {
        matches!(self, BranchKind::Cond { .. })
    }
}

/// The operation performed by a µop.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum InsnKind {
    /// Register/immediate ALU operation: `dst = src1 <op> src2`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Destination register.
        dst: Gpr,
        /// First source register.
        src1: Gpr,
        /// Second source (register or immediate).
        src2: Operand,
    },
    /// Load a 64-bit immediate (the binary encoder restricts it to a 44-bit
    /// signed value; see [`crate::encode`]).
    MovImm {
        /// Destination register.
        dst: Gpr,
        /// Immediate value.
        imm: i64,
    },
    /// Comparison writing a predicate register: `dst = src1 <op> src2`.
    Cmp {
        /// Comparison operation.
        op: CmpOp,
        /// Destination predicate register.
        dst: PredReg,
        /// First source register.
        src1: Gpr,
        /// Second source (register or immediate).
        src2: Operand,
    },
    /// Two-destination comparison, IA-64 style: `dst_t = src1 <op> src2`
    /// and `dst_f = !(src1 <op> src2)`. If-conversion uses this to guard the
    /// taken-side with `dst_t` and the fall-through side with `dst_f`.
    Cmp2 {
        /// Comparison operation.
        op: CmpOp,
        /// Destination predicate receiving the comparison result.
        dst_t: PredReg,
        /// Destination predicate receiving the complement.
        dst_f: PredReg,
        /// First source register.
        src1: Gpr,
        /// Second source (register or immediate).
        src2: Operand,
    },
    /// Boolean operation on predicate registers.
    PredRR {
        /// Operation.
        op: PredOp,
        /// Destination predicate register.
        dst: PredReg,
        /// First source predicate.
        src1: PredReg,
        /// Second source predicate.
        src2: PredReg,
    },
    /// Predicate complement: `dst = !src`.
    PredNot {
        /// Destination predicate register.
        dst: PredReg,
        /// Source predicate register.
        src: PredReg,
    },
    /// Predicate initialization: `dst = value` (e.g. the `mov p1,1` in the
    /// loop header of wish-loop code, Fig. 4b).
    PredSet {
        /// Destination predicate register.
        dst: PredReg,
        /// Value to set.
        value: bool,
    },
    /// 64-bit load: `dst = mem[base + offset]`.
    Load {
        /// Destination register.
        dst: Gpr,
        /// Base address register.
        base: Gpr,
        /// Byte offset.
        offset: i32,
    },
    /// 64-bit store: `mem[base + offset] = src`.
    Store {
        /// Data register.
        src: Gpr,
        /// Base address register.
        base: Gpr,
        /// Byte offset.
        offset: i32,
    },
    /// Control transfer. `target` is an absolute µop index (ignored by
    /// `Ret`/`Indirect`).
    Branch {
        /// Branch flavour.
        kind: BranchKind,
        /// Absolute target µop index for direct branches.
        target: u32,
    },
    /// Stops the program.
    Halt,
    /// No operation (kept in the ISA for encode/decode completeness; the
    /// compiler never emits it and the µop translator in the paper strips
    /// NOPs).
    Nop,
}

/// A complete µop: operation plus qualifying (guard) predicate plus optional
/// wish hint.
///
/// The `btype`/`wtype` hint fields of the paper's Fig. 7 are represented by
/// [`Insn::wish`]: `None` means `btype = normal`; `Some(w)` means
/// `btype = wish` with the given `wtype`. Hardware without wish-branch
/// support simply ignores the field and treats the instruction as a normal
/// conditional branch.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Insn {
    /// Qualifying predicate: the µop architecturally executes only when the
    /// guard reads TRUE; otherwise it is a NOP (C-style conversion makes it
    /// copy its old destination value, see the uarch crate).
    pub guard: Option<PredReg>,
    /// The operation.
    pub kind: InsnKind,
    /// Wish hint; only meaningful on conditional branches.
    pub wish: Option<WishType>,
}

impl Insn {
    /// Creates an unguarded, non-wish instruction.
    #[must_use]
    pub fn new(kind: InsnKind) -> Insn {
        Insn {
            guard: None,
            kind,
            wish: None,
        }
    }

    /// ALU instruction `dst = src1 <op> src2`.
    #[must_use]
    pub fn alu(op: AluOp, dst: Gpr, src1: Gpr, src2: Operand) -> Insn {
        Insn::new(InsnKind::Alu {
            op,
            dst,
            src1,
            src2,
        })
    }

    /// Register move `dst = src` (encoded as `add dst = src, 0`).
    #[must_use]
    pub fn mov(dst: Gpr, src: Gpr) -> Insn {
        Insn::alu(AluOp::Add, dst, src, Operand::Imm(0))
    }

    /// Immediate move `dst = imm`.
    #[must_use]
    pub fn mov_imm(dst: Gpr, imm: i64) -> Insn {
        Insn::new(InsnKind::MovImm { dst, imm })
    }

    /// Comparison `pdst = src1 <op> src2`.
    #[must_use]
    pub fn cmp(op: CmpOp, dst: PredReg, src1: Gpr, src2: Operand) -> Insn {
        Insn::new(InsnKind::Cmp {
            op,
            dst,
            src1,
            src2,
        })
    }

    /// Two-destination comparison `dst_t, dst_f = src1 <op> src2`.
    ///
    /// # Panics
    ///
    /// Panics if `dst_t == dst_f` (the two destinations must differ).
    #[must_use]
    pub fn cmp2(op: CmpOp, dst_t: PredReg, dst_f: PredReg, src1: Gpr, src2: Operand) -> Insn {
        assert!(dst_t != dst_f, "cmp2 destinations must differ");
        Insn::new(InsnKind::Cmp2 {
            op,
            dst_t,
            dst_f,
            src1,
            src2,
        })
    }

    /// Load `dst = mem[base + offset]`.
    #[must_use]
    pub fn load(dst: Gpr, base: Gpr, offset: i32) -> Insn {
        Insn::new(InsnKind::Load { dst, base, offset })
    }

    /// Store `mem[base + offset] = src`.
    #[must_use]
    pub fn store(src: Gpr, base: Gpr, offset: i32) -> Insn {
        Insn::new(InsnKind::Store { src, base, offset })
    }

    /// Branch of the given flavour to an absolute µop index.
    #[must_use]
    pub fn branch(kind: BranchKind, target: u32) -> Insn {
        Insn::new(InsnKind::Branch { kind, target })
    }

    /// Predicate initialization `dst = value`.
    #[must_use]
    pub fn pred_set(dst: PredReg, value: bool) -> Insn {
        Insn::new(InsnKind::PredSet { dst, value })
    }

    /// Predicate complement `dst = !src`.
    #[must_use]
    pub fn pred_not(dst: PredReg, src: PredReg) -> Insn {
        Insn::new(InsnKind::PredNot { dst, src })
    }

    /// Halt instruction.
    #[must_use]
    pub fn halt() -> Insn {
        Insn::new(InsnKind::Halt)
    }

    /// Returns the same instruction guarded by predicate `p`.
    #[must_use]
    pub fn guarded(mut self, p: PredReg) -> Insn {
        self.guard = Some(p);
        self
    }

    /// Returns the same instruction with a wish hint attached.
    ///
    /// # Panics
    ///
    /// Panics if the instruction is not a conditional branch — only
    /// conditional branches can be wish branches.
    #[must_use]
    pub fn with_wish(mut self, w: WishType) -> Insn {
        assert!(
            self.is_conditional_branch(),
            "wish hints are only valid on conditional branches: {self}"
        );
        self.wish = Some(w);
        self
    }

    /// Whether this is any control-transfer µop.
    #[must_use]
    pub fn is_branch(&self) -> bool {
        matches!(self.kind, InsnKind::Branch { .. })
    }

    /// Whether this is a conditional direct branch.
    #[must_use]
    pub fn is_conditional_branch(&self) -> bool {
        matches!(
            self.kind,
            InsnKind::Branch {
                kind: BranchKind::Cond { .. },
                ..
            }
        )
    }

    /// Whether this branch carries a wish hint.
    #[must_use]
    pub fn is_wish_branch(&self) -> bool {
        self.wish.is_some()
    }

    /// The GPR written by this instruction, if any.
    #[must_use]
    pub fn def_gpr(&self) -> Option<Gpr> {
        match self.kind {
            InsnKind::Alu { dst, .. } | InsnKind::MovImm { dst, .. } | InsnKind::Load { dst, .. } => {
                Some(dst)
            }
            InsnKind::Branch {
                kind: BranchKind::Call,
                ..
            } => Some(Gpr::LINK),
            _ => None,
        }
    }

    /// The predicate registers written by this instruction (up to two, for
    /// [`InsnKind::Cmp2`]). Writes to the hardwired `p0` are architecturally
    /// ignored but still reported here (the hardware must still detect the
    /// redefinition, §3.5.3).
    #[must_use]
    pub fn def_preds(&self) -> [Option<PredReg>; 2] {
        match self.kind {
            InsnKind::Cmp { dst, .. }
            | InsnKind::PredRR { dst, .. }
            | InsnKind::PredNot { dst, .. }
            | InsnKind::PredSet { dst, .. } => [Some(dst), None],
            InsnKind::Cmp2 { dst_t, dst_f, .. } => [Some(dst_t), Some(dst_f)],
            _ => [None, None],
        }
    }

    /// The first predicate register written by this instruction, if any.
    /// Prefer [`Insn::def_preds`] where `Cmp2`'s second destination matters.
    #[must_use]
    pub fn def_pred(&self) -> Option<PredReg> {
        self.def_preds()[0]
    }

    /// The (up to two) GPR sources read by this instruction, excluding the
    /// guard predicate. Entries are `None` when unused.
    #[must_use]
    pub fn gpr_srcs(&self) -> [Option<Gpr>; 2] {
        match self.kind {
            InsnKind::Alu { src1, src2, .. }
            | InsnKind::Cmp { src1, src2, .. }
            | InsnKind::Cmp2 { src1, src2, .. } => [Some(src1), src2.as_reg()],
            InsnKind::Load { base, .. } => [Some(base), None],
            InsnKind::Store { src, base, .. } => [Some(base), Some(src)],
            InsnKind::Branch {
                kind: BranchKind::Indirect { target },
                ..
            } => [Some(target), None],
            InsnKind::Branch {
                kind: BranchKind::Ret,
                ..
            } => [Some(Gpr::LINK), None],
            _ => [None, None],
        }
    }

    /// The (up to two) predicate sources read by this instruction, excluding
    /// the guard predicate.
    #[must_use]
    pub fn pred_srcs(&self) -> [Option<PredReg>; 2] {
        match self.kind {
            InsnKind::PredRR { src1, src2, .. } => [Some(src1), Some(src2)],
            InsnKind::PredNot { src, .. } => [Some(src), None],
            InsnKind::Branch {
                kind: BranchKind::Cond { pred, .. },
                ..
            } => [Some(pred), None],
            _ => [None, None],
        }
    }

    /// The static target of a direct branch/call, if this is one.
    #[must_use]
    pub fn direct_target(&self) -> Option<u32> {
        match self.kind {
            InsnKind::Branch { kind, target } => match kind {
                BranchKind::Cond { .. } | BranchKind::Uncond | BranchKind::Call => Some(target),
                BranchKind::Ret | BranchKind::Indirect { .. } => None,
            },
            _ => None,
        }
    }

    /// Whether this µop accesses data memory.
    #[must_use]
    pub fn is_mem(&self) -> bool {
        matches!(self.kind, InsnKind::Load { .. } | InsnKind::Store { .. })
    }
}

impl fmt::Display for Insn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(g) = self.guard {
            write!(f, "({g}) ")?;
        }
        match self.kind {
            InsnKind::Alu {
                op,
                dst,
                src1,
                src2,
            } => write!(f, "{} {dst} = {src1}, {src2}", op.mnemonic()),
            InsnKind::MovImm { dst, imm } => write!(f, "movi {dst} = {imm}"),
            InsnKind::Cmp {
                op,
                dst,
                src1,
                src2,
            } => write!(f, "cmp.{} {dst} = {src1}, {src2}", op.mnemonic()),
            InsnKind::Cmp2 {
                op,
                dst_t,
                dst_f,
                src1,
                src2,
            } => write!(f, "cmp.{} {dst_t}, {dst_f} = {src1}, {src2}", op.mnemonic()),
            InsnKind::PredRR {
                op,
                dst,
                src1,
                src2,
            } => write!(f, "{} {dst} = {src1}, {src2}", op.mnemonic()),
            InsnKind::PredNot { dst, src } => write!(f, "pnot {dst} = {src}"),
            InsnKind::PredSet { dst, value } => write!(f, "pset {dst} = {}", i32::from(value)),
            InsnKind::Load { dst, base, offset } => write!(f, "ld {dst} = [{base}{offset:+}]"),
            InsnKind::Store { src, base, offset } => write!(f, "st [{base}{offset:+}] = {src}"),
            InsnKind::Branch { kind, target } => match kind {
                BranchKind::Cond { pred, sense } => {
                    let prefix = match self.wish {
                        Some(w) => format!("wish.{}", w.mnemonic()),
                        None => "br".to_string(),
                    };
                    let bang = if sense { "" } else { "!" };
                    write!(f, "{prefix} {bang}{pred}, {target}")
                }
                BranchKind::Uncond => write!(f, "br.uncond {target}"),
                BranchKind::Call => write!(f, "call {target}"),
                BranchKind::Ret => write!(f, "ret"),
                BranchKind::Indirect { target: reg } => write!(f, "jmp {reg}"),
            },
            InsnKind::Halt => write!(f, "halt"),
            InsnKind::Nop => write!(f, "nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: u8) -> PredReg {
        PredReg::new(i)
    }
    fn r(i: u8) -> Gpr {
        Gpr::new(i)
    }

    #[test]
    fn display_matches_paper_style() {
        let i = Insn::alu(AluOp::Add, r(3), r(1), Operand::reg(2)).guarded(p(1));
        assert_eq!(i.to_string(), "(p1) add r3 = r1, r2");
        let wj = Insn::branch(BranchKind::cond(p(1), true), 42).with_wish(WishType::Jump);
        assert_eq!(wj.to_string(), "wish.jump p1, 42");
        let wj = Insn::branch(BranchKind::cond(p(1), false), 7).with_wish(WishType::Join);
        assert_eq!(wj.to_string(), "wish.join !p1, 7");
        assert_eq!(Insn::load(r(4), r(5), 8).to_string(), "ld r4 = [r5+8]");
        assert_eq!(Insn::store(r(4), r(5), -8).to_string(), "st [r5-8] = r4");
        assert_eq!(Insn::pred_set(p(1), true).to_string(), "pset p1 = 1");
    }

    #[test]
    fn defs_and_uses() {
        let i = Insn::alu(AluOp::Sub, r(3), r(1), Operand::reg(2));
        assert_eq!(i.def_gpr(), Some(r(3)));
        assert_eq!(i.gpr_srcs(), [Some(r(1)), Some(r(2))]);
        assert_eq!(i.def_pred(), None);

        let c = Insn::cmp(CmpOp::Lt, p(2), r(1), Operand::imm(5));
        assert_eq!(c.def_pred(), Some(p(2)));
        assert_eq!(c.gpr_srcs(), [Some(r(1)), None]);

        let call = Insn::branch(BranchKind::Call, 10);
        assert_eq!(call.def_gpr(), Some(Gpr::LINK));
        let ret = Insn::branch(BranchKind::Ret, 0);
        assert_eq!(ret.gpr_srcs(), [Some(Gpr::LINK), None]);
    }

    #[test]
    fn branch_queries() {
        let b = Insn::branch(BranchKind::cond(p(1), true), 9);
        assert!(b.is_branch());
        assert!(b.is_conditional_branch());
        assert!(!b.is_wish_branch());
        assert_eq!(b.direct_target(), Some(9));
        assert_eq!(b.pred_srcs()[0], Some(p(1)));

        let u = Insn::branch(BranchKind::Uncond, 3);
        assert!(!u.is_conditional_branch());
        assert_eq!(u.direct_target(), Some(3));

        let ind = Insn::branch(BranchKind::Indirect { target: r(7) }, 0);
        assert_eq!(ind.direct_target(), None);
        assert_eq!(ind.gpr_srcs()[0], Some(r(7)));
    }

    #[test]
    #[should_panic(expected = "only valid on conditional branches")]
    fn wish_on_non_branch_panics() {
        let _ = Insn::halt().with_wish(WishType::Loop);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.apply(i64::MAX, 1), i64::MIN); // wrapping
        assert_eq!(AluOp::Div.apply(10, 0), 0); // trap-free
        assert_eq!(AluOp::Shl.apply(1, 65), 2); // shift masked to 6 bits
        assert!(CmpOp::Le.apply(3, 3));
        assert_eq!(CmpOp::Lt.negate(), CmpOp::Ge);
        assert!(PredOp::Xor.apply(true, false));
    }
}
