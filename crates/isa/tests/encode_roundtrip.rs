//! Property tests: every constructible µop round-trips through the binary
//! encoding, and decoding with hints ignored only ever strips wish bits.

use proptest::prelude::*;
use wishbranch_isa::encode::{decode, decode_with_options, encode};
use wishbranch_isa::{
    AluOp, BranchKind, CmpOp, Gpr, Insn, InsnKind, Operand, PredOp, PredReg, WishType,
};

fn arb_gpr() -> impl Strategy<Value = Gpr> {
    (0u8..64).prop_map(Gpr::new)
}

fn arb_pred() -> impl Strategy<Value = PredReg> {
    (0u8..16).prop_map(PredReg::new)
}

fn arb_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Mul),
        Just(AluOp::Div),
    ]
}

fn arb_cmp_op() -> impl Strategy<Value = CmpOp> {
    prop_oneof![
        Just(CmpOp::Eq),
        Just(CmpOp::Ne),
        Just(CmpOp::Lt),
        Just(CmpOp::Le),
        Just(CmpOp::Gt),
        Just(CmpOp::Ge),
    ]
}

fn arb_operand() -> impl Strategy<Value = Operand> {
    prop_oneof![
        arb_gpr().prop_map(Operand::Reg),
        // Immediates must fit the 31-bit signed field.
        (-(1i32 << 30)..(1i32 << 30) - 1).prop_map(Operand::Imm),
    ]
}

fn arb_target() -> impl Strategy<Value = u32> {
    0u32..(1 << 30)
}

fn arb_kind() -> impl Strategy<Value = InsnKind> {
    prop_oneof![
        (arb_alu_op(), arb_gpr(), arb_gpr(), arb_operand()).prop_map(|(op, dst, src1, src2)| {
            InsnKind::Alu {
                op,
                dst,
                src1,
                src2,
            }
        }),
        (arb_gpr(), -(1i64 << 43)..(1i64 << 43) - 1)
            .prop_map(|(dst, imm)| InsnKind::MovImm { dst, imm }),
        (arb_cmp_op(), arb_pred(), arb_gpr(), arb_operand()).prop_map(|(op, dst, src1, src2)| {
            InsnKind::Cmp {
                op,
                dst,
                src1,
                src2,
            }
        }),
        (arb_cmp_op(), arb_pred(), arb_pred(), arb_gpr(), arb_gpr(), -(1i32 << 26)..(1i32 << 26) - 1, any::<bool>())
            .prop_filter("cmp2 dests must differ", |(_, t, f, ..)| t != f)
            .prop_map(|(op, dst_t, dst_f, src1, reg2, imm, use_imm)| InsnKind::Cmp2 {
                op,
                dst_t,
                dst_f,
                src1,
                src2: if use_imm { Operand::Imm(imm) } else { Operand::Reg(reg2) },
            }),
        (arb_pred(), arb_pred(), arb_pred()).prop_map(|(dst, src1, src2)| InsnKind::PredRR {
            op: PredOp::And,
            dst,
            src1,
            src2,
        }),
        (arb_pred(), arb_pred()).prop_map(|(dst, src)| InsnKind::PredNot { dst, src }),
        (arb_pred(), any::<bool>()).prop_map(|(dst, value)| InsnKind::PredSet { dst, value }),
        (arb_gpr(), arb_gpr(), -(1i32 << 20)..(1i32 << 20))
            .prop_map(|(dst, base, offset)| InsnKind::Load { dst, base, offset }),
        (arb_gpr(), arb_gpr(), -(1i32 << 20)..(1i32 << 20))
            .prop_map(|(src, base, offset)| InsnKind::Store { src, base, offset }),
        (arb_pred(), any::<bool>(), arb_target()).prop_map(|(pred, sense, target)| {
            InsnKind::Branch {
                kind: BranchKind::Cond { pred, sense },
                target,
            }
        }),
        arb_target().prop_map(|t| InsnKind::Branch {
            kind: BranchKind::Uncond,
            target: t,
        }),
        arb_target().prop_map(|t| InsnKind::Branch {
            kind: BranchKind::Call,
            target: t,
        }),
        Just(InsnKind::Branch {
            kind: BranchKind::Ret,
            target: 0,
        }),
        arb_gpr().prop_map(|r| InsnKind::Branch {
            kind: BranchKind::Indirect { target: r },
            target: 0,
        }),
        Just(InsnKind::Halt),
        Just(InsnKind::Nop),
    ]
}

fn arb_insn() -> impl Strategy<Value = Insn> {
    (arb_kind(), proptest::option::of(arb_pred()), 0u8..4).prop_map(|(kind, guard, wish_sel)| {
        let mut insn = Insn { guard, kind, wish: None };
        if insn.is_conditional_branch() {
            insn.wish = match wish_sel {
                0 => None,
                1 => Some(WishType::Jump),
                2 => Some(WishType::Join),
                _ => Some(WishType::Loop),
            };
        }
        insn
    })
}

proptest! {
    #[test]
    fn encode_decode_roundtrip(insn in arb_insn()) {
        let word = encode(&insn).expect("arbitrary insn should encode");
        let back = decode(word).expect("encoded insn should decode");
        prop_assert_eq!(insn, back);
    }

    #[test]
    fn hint_ignoring_decode_strips_only_wish_bits(insn in arb_insn()) {
        let word = encode(&insn).expect("encode");
        let legacy = decode_with_options(word, true).expect("decode");
        let mut expected = insn;
        expected.wish = None;
        prop_assert_eq!(expected, legacy);
    }

    #[test]
    fn disassembly_is_never_empty(insn in arb_insn()) {
        prop_assert!(!insn.to_string().is_empty());
    }
}
