//! Disassembly → assembly round trip: any compiled/constructed program's
//! textual form re-assembles to the identical image.

use wishbranch_isa::asm::assemble;
use wishbranch_isa::{
    AluOp, BranchKind, CmpOp, Gpr, Insn, InsnKind, Operand, PredOp, PredReg, Program, WishType,
};

/// Renders a program in assembler-accepted syntax (plain disassembly with
/// absolute branch targets).
fn disasm(p: &Program) -> String {
    p.insns()
        .iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join("\n")
}

fn roundtrip(insns: Vec<Insn>) {
    let p = Program::from_insns(insns);
    let text = disasm(&p);
    let back = assemble(&text).unwrap_or_else(|e| panic!("reassembly failed: {e}\n{text}"));
    assert_eq!(p.insns(), back.insns(), "round trip changed the program:\n{text}");
}

#[test]
fn representative_program_roundtrips() {
    let r = Gpr::new;
    let p = PredReg::new;
    roundtrip(vec![
        Insn::mov_imm(r(1), -123456),
        Insn::alu(AluOp::Add, r(2), r(1), Operand::reg(3)),
        Insn::alu(AluOp::Div, r(2), r(2), Operand::imm(-7)).guarded(p(3)),
        Insn::cmp(CmpOp::Ne, p(1), r(2), Operand::imm(0)),
        Insn::cmp2(CmpOp::Lt, p(2), p(3), r(1), Operand::reg(2)),
        Insn::new(InsnKind::PredRR {
            op: PredOp::Xor,
            dst: p(4),
            src1: p(1),
            src2: p(2),
        }),
        Insn::pred_not(p(5), p(4)),
        Insn::pred_set(p(6), true),
        Insn::load(r(4), r(5), -16).guarded(p(2)),
        Insn::store(r(4), r(5), 24),
        Insn::branch(BranchKind::cond(p(1), true), 0).with_wish(WishType::Loop),
        Insn::branch(BranchKind::cond(p(2), false), 13),
        Insn::branch(BranchKind::Uncond, 13),
        Insn::branch(BranchKind::Call, 13),
        Insn::branch(BranchKind::Ret, 0),
        Insn::branch(BranchKind::Indirect { target: r(9) }, 0),
        Insn::halt(),
        Insn::new(InsnKind::Nop),
    ]);
}

#[test]
fn compiled_workload_binaries_roundtrip() {
    use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
    use wishbranch_core::profile_on;
    use wishbranch_workloads::{suite, InputSet};
    for bench in suite(20) {
        let profile = profile_on(&bench, InputSet::B).expect("profile");
        for variant in [BinaryVariant::NormalBranch, BinaryVariant::WishJumpJoinLoop] {
            let bin = compile(&bench.module, &profile, variant, &CompileOptions::default());
            let text = disasm(&bin.program);
            let back = assemble(&text)
                .unwrap_or_else(|e| panic!("{} {variant}: {e}", bench.name));
            assert_eq!(
                bin.program.insns(),
                back.insns(),
                "{} {variant}: round trip changed the binary",
                bench.name
            );
        }
    }
}
