//! Decode robustness: arbitrary 64-bit words must either decode cleanly or
//! return a typed error — never panic — and everything that decodes must
//! re-encode to a word that decodes to the same instruction (canonical
//! round trip). The legacy decoder (wish hints ignored, paper §3.4) is
//! held to the same standard and must agree with the hint-honouring
//! decoder on everything but the hint bits.

use proptest::prelude::*;
use wishbranch_isa::encode::{decode, decode_with_options, encode, EncodeError};
use wishbranch_isa::{Gpr, Insn};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn decode_never_panics(word in any::<u64>()) {
        let _ = decode(word);
    }

    #[test]
    fn legacy_decode_never_panics_and_drops_every_hint(word in any::<u64>()) {
        // A machine without wish support must decode any word a wish
        // machine accepts — and must never see a wish branch.
        if let Ok(insn) = decode_with_options(word, true) {
            prop_assert!(insn.wish.is_none(), "legacy decode leaked a wish hint: {insn}");
        }
    }

    #[test]
    fn decoded_insns_reencode_canonically(word in any::<u64>()) {
        if let Ok(insn) = decode(word) {
            let reencoded = encode(&insn).expect("decoded instructions must re-encode");
            let again = decode(reencoded).expect("re-encoded word must decode");
            prop_assert_eq!(insn, again);
        }
    }

    #[test]
    fn decode_is_deterministic(word in any::<u64>()) {
        prop_assert_eq!(decode(word), decode(word));
    }

    #[test]
    fn legacy_decode_agrees_modulo_hints(word in any::<u64>()) {
        // Whenever the wish-aware decoder accepts a word, the legacy
        // decoder accepts it too and produces the same µop minus hints.
        if let Ok(insn) = decode(word) {
            let legacy = decode_with_options(word, true)
                .expect("hint-dropping must not invent new decode errors");
            let mut dehinted = insn;
            dehinted.wish = None;
            prop_assert_eq!(legacy, dehinted);
        }
    }

    #[test]
    fn legacy_decode_rescues_reserved_wish_type(word in any::<u64>()) {
        // The only word class where the decoders may disagree on Ok-ness
        // is the reserved wtype: the legacy decoder never inspects it.
        if decode(word).is_err() && decode_with_options(word, true).is_ok() {
            prop_assert_eq!(
                decode(word),
                Err(wishbranch_isa::encode::DecodeError::BadWishType)
            );
        }
    }

    #[test]
    fn display_of_decoded_is_nonempty(word in any::<u64>()) {
        if let Ok(insn) = decode(word) {
            prop_assert!(!insn.to_string().is_empty());
        }
    }

    #[test]
    fn decode_errors_display_nonempty(word in any::<u64>()) {
        if let Err(e) = decode(word) {
            prop_assert!(!e.to_string().is_empty());
        }
    }

    #[test]
    fn out_of_range_offsets_are_typed_errors(offset in any::<i32>()) {
        // Load/store offsets occupy a signed 31-bit field; i32 extremes
        // must come back as EncodeError, never a panic or silent wrap.
        let insn = Insn::load(Gpr::new(1), Gpr::new(2), offset);
        match encode(&insn) {
            Ok(word) => {
                let back = decode(word).expect("encoded word must decode");
                prop_assert_eq!(insn, back, "in-range offset must round-trip");
            }
            Err(e) => {
                prop_assert_eq!(e, EncodeError::ImmOutOfRange(i64::from(offset)));
                prop_assert!(!e.to_string().is_empty());
                let bound = 1i64 << 30;
                let v = i64::from(offset);
                prop_assert!(
                    v >= bound || v < -bound,
                    "typed error only outside the 31-bit field: {v}"
                );
            }
        }
    }
}
