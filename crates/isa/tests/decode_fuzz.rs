//! Decode robustness: arbitrary 64-bit words must either decode cleanly or
//! return a typed error — never panic — and everything that decodes must
//! re-encode to a word that decodes to the same instruction (canonical
//! round trip).

use proptest::prelude::*;
use wishbranch_isa::encode::{decode, encode};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(2048))]

    #[test]
    fn decode_never_panics(word in any::<u64>()) {
        let _ = decode(word);
    }

    #[test]
    fn decoded_insns_reencode_canonically(word in any::<u64>()) {
        if let Ok(insn) = decode(word) {
            let reencoded = encode(&insn).expect("decoded instructions must re-encode");
            let again = decode(reencoded).expect("re-encoded word must decode");
            prop_assert_eq!(insn, again);
        }
    }

    #[test]
    fn display_of_decoded_is_nonempty(word in any::<u64>()) {
        if let Ok(insn) = decode(word) {
            prop_assert!(!insn.to_string().is_empty());
        }
    }
}
