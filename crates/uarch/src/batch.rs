//! Batched lockstep simulation: N independent lanes advanced over
//! structure-of-arrays state by one [`BatchSimulator`].
//!
//! A *lane* is one complete simulation — its own `MachineConfig`, input
//! memory image, predictors, speculative emulator and counters — but all
//! lanes of a batch share one pre-decoded per-PC µop cache and static DHP
//! hammock-plan table ([`crate::decode::DecodedProgram`], behind an `Arc`)
//! per distinct `(program, decode key)` pair. Lanes advance in lockstep
//! *rounds*: each round gives every still-running lane a fixed budget of
//! cycles, and finished lanes are retired from the active set so a
//! straggler lane never serializes the others' completion.
//!
//! # Bit-identity contract
//!
//! Every lane must produce a [`SimResult`] **byte-identical** to the
//! scalar [`crate::Simulator`] run with the same program, configuration
//! and inputs. Lanes are fully independent (nothing dynamic is shared),
//! so the round granularity cannot affect results; what the lane engine
//! changes is only the *layout* of in-flight µop state:
//!
//! * fetched µops live in a per-lane slot arena ([`UopSlot`]) written once
//!   at fetch; the front-end queue and ROB hold `u32` slot indices
//!   instead of moving ~230-byte [`FetchedUop`]/[`RobEntry`] structs
//!   through every pipeline stage (the scalar hot path's dominant cost);
//! * ROB entries are slim
//!   records ([`RobSlim`]) with *implicit* contiguous ids — the id of
//!   entry `i` is `front_id + i`, maintained at retire/flush, replacing
//!   the stored `id`/`next_rob_id` pair;
//! * static per-PC facts are read by reference from the shared
//!   `DecodedProgram` instead of being copied per rename.
//!
//! The port preserves the scalar engine's stateful operation order
//! exactly; `tests/golden_figures.rs` and the batched-vs-scalar
//! equivalence suite lock the contract.

use crate::config::{MachineConfig, OracleConfig, PredMechanism};
use crate::core::{
    fetch_line_gate, BrMeta, DhpState, ForwardState, GuardPlan, Mode, Role, SimError, SimResult,
    StallReason, WaiterList, WAITERS_INLINE,
};
use crate::decode::{DecodeKey, DecodedProgram, PcInfo, EC_DIV, EC_LOAD, EC_MUL, EC_UNIT};
use crate::emu::{SpecEmulator, StepInfo};
use crate::stats::{HotSiteCounts, LoopExitClass, SimStats, WishClassCounts};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::sync::Arc;
use wishbranch_bpred::{
    Btb, BtbEntry, BtbKind, HybridPredictor, HybridToken, IndirectConfig, IndirectTargetCache,
    JrsConfidence, LoopPredictor, ReturnAddressStack,
};
use wishbranch_isa::{
    insn_addr, BranchKind, Gpr, Insn, InsnKind, PredReg, Program, WishType, NUM_GPRS, NUM_PREDS,
};
use wishbranch_mem::{AccessOutcome, MemoryHierarchy, StoreOutcome};

/// One lane of a batch: a program reference, its machine configuration,
/// the input memory image, and whether the retired-instruction stream
/// should be collected (lockstep-oracle validation).
pub struct BatchLaneSpec<'p> {
    /// The compiled program this lane executes.
    pub program: &'p Program,
    /// The lane's machine configuration.
    pub cfg: MachineConfig,
    /// Data-memory preloads (program input), applied before cycle 0.
    pub preload_mem: Vec<(u64, i64)>,
    /// Collect a [`wishbranch_isa::RetireRecord`] stream for this lane
    /// (retrieve with [`BatchSimulator::take_retire_log`]).
    pub retire_log: bool,
}

/// In-flight µop state, written once at fetch into a per-lane slot arena.
/// The front-end queue and ROB reference slots by index; the instruction
/// itself is *not* stored — static facts come from the shared
/// [`DecodedProgram`].
struct UopSlot {
    seq: u64,
    pc: u32,
    fetch_cycle: u64,
    info: StepInfo,
    /// Branch metadata arena reference ([`NO_BR`] = not a branch and not a
    /// predicted predicate write). [`BrMeta`] embeds a full RAS checkpoint
    /// (~300 bytes), so it lives out-of-line: the per-µop slot copy stays
    /// small and the metadata is written only for µops that carry it.
    br: u32,
    /// Guard value supplied by the predicate-dependency-elimination buffer
    /// (§3.5.3), if any.
    guard_pred_elim: Option<bool>,
    /// Hardware-injected guard from dynamic hammock predication.
    hw_guard: Option<(PredReg, bool)>,
    /// Predicate prediction: predicted first-destination value.
    pred_check: Option<bool>,
}

/// `UopSlot::br` value for µops without branch metadata.
const NO_BR: u32 = u32::MAX;

/// `RobSlim::flags` bits.
const F_ISSUED: u8 = 1;
const F_DONE: u8 = 2;
const F_RESOLVED: u8 = 4;
const F_MISPRED: u8 = 8;
/// A completion event for this entry is scheduled (lazy wakeup: events
/// exist only for producers that actually have registered waiters).
const F_EVENT: u8 = 16;

/// `RobSlim::meta` layout: execution-latency class in the low bits plus
/// the two static facts the scheduler checks every cycle, copied out of
/// the shared [`PcInfo`] at dispatch so the resolve/retire/issue hot paths
/// never touch the decoded-program tables for non-memory µops.
const META_CLASS: u8 = 7;
const META_BRANCH: u8 = 8;
const META_PREDCHK: u8 = 16;

/// Completion-event calendar ring: events within `RING` cycles of now live
/// in per-cycle buckets (O(1) push/drain, occupancy bitmap for the flush
/// purge); the rare longer-latency events overflow into a heap.
const RING: u64 = 512;
const RING_WORDS: usize = (RING as usize) / 64;

/// `RobSlim::loop_class` encoding (0 = none).
const LC_EARLY: u8 = 1;
const LC_LATE: u8 = 2;
const LC_NOEXIT: u8 = 3;

/// A slim ROB entry: a slot reference plus scheduling state. Entry ids are
/// implicit — the entry at index `i` has id `front_id + i`.
struct RobSlim {
    slot: u32,
    pc: u32,
    unready: u32,
    /// `META_*` bits: exec class + is-branch + has-pred-check.
    meta: u8,
    role: Role,
    flags: u8,
    /// Filled at resolution for mispredicted low-confidence wish loops.
    loop_class: u8,
    ready_cycle: u64,
    waiters: WaiterList,
}

/// Progress of one lane after an [`Lane::advance`] round.
enum LaneStatus {
    Running,
    Halted,
    Limit(SimError),
}

/// One lane's complete dynamic state: the scalar simulator's fields over
/// arena/slim storage, sharing its `DecodedProgram` read-only.
struct Lane {
    decoded: Arc<DecodedProgram>,
    cfg: MachineConfig,
    fetch_queue_cap: usize,
    cycle: u64,
    emu: SpecEmulator,
    mem: MemoryHierarchy,
    bp: HybridPredictor,
    btb: Btb,
    ras: ReturnAddressStack,
    itc: IndirectTargetCache,
    jrs: JrsConfidence,
    loop_pred: Option<LoopPredictor>,
    fetch_pc: u32,
    fetch_stall_until: u64,
    fetch_stall_reason: StallReason,
    fetch_blocked: bool,
    fetch_line: Option<u64>,
    last_flush_cycle: Option<u64>,
    cyc_retired_useful: bool,
    cyc_retired_guard_false: bool,
    cyc_mshr_stalled: bool,
    cyc_writebuf_stalled: bool,
    mode: Mode,
    pred_elim: [Option<bool>; NUM_PREDS],
    pred_elim_live: u32,
    cmp2_partner: [Option<u8>; NUM_PREDS],
    loop_last_pred: Vec<Option<(bool, u64)>>,
    dhp: DhpState,
    pred_value_pht: Vec<u8>,
    hot_sites: Vec<HotSiteCounts>,
    conf_history: u64,
    next_seq: u64,
    /// Id of the ROB entry at index 0; when the ROB is empty, the id the
    /// next pushed entry receives. Mirrors the scalar invariant
    /// `next_rob_id == front.id + rob.len()`.
    front_id: u64,
    /// The µop slot arena and its free list.
    slots: Vec<UopSlot>,
    free: Vec<u32>,
    /// Branch-metadata arena (referenced by `UopSlot::br`) and free list.
    br_arena: Vec<BrMeta>,
    br_free: Vec<u32>,
    fe_queue: VecDeque<u32>,
    rob: VecDeque<RobSlim>,
    /// Ready set: a circular bitmap over entry ids (capacity ≥ ROB size,
    /// power of two). Lowest-id-first extraction replaces the scalar
    /// engine's binary heap; insertion order is irrelevant to a bitmap, so
    /// wakeup events may fire in any within-cycle order.
    ready_bits: Vec<u64>,
    ready_mask: u64,
    ready_count: u32,
    /// Completion-event calendar: per-cycle buckets for the next `RING`
    /// cycles plus an overflow heap for longer latencies.
    ring: Vec<Vec<u64>>,
    ring_occ: [u64; RING_WORDS],
    far_events: BinaryHeap<Reverse<(u64, u64)>>,
    far_min: u64,
    /// Earliest cycle at which an unresolved branch/pred-check could become
    /// eligible; the resolve scan is skipped entirely before then.
    next_resolve: u64,
    unresolved: Vec<u64>,
    store_queue: VecDeque<u64>,
    blocked_loads: Vec<u64>,
    dep_scratch: Vec<u64>,
    waiter_pool: Vec<Vec<u64>>,
    gpr_prod: [Option<u64>; NUM_GPRS],
    pred_prod: [Option<u64>; NUM_PREDS],
    stats: SimStats,
    halted: bool,
    retire_log: Option<Vec<wishbranch_isa::RetireRecord>>,
}

impl Lane {
    fn new(spec: &BatchLaneSpec<'_>, decoded: Arc<DecodedProgram>) -> Lane {
        let cfg = spec.cfg.clone();
        let n = decoded.len();
        let ready_cap = cfg.rob_size.next_power_of_two().max(64);
        let mut emu = SpecEmulator::new();
        for &(a, v) in &spec.preload_mem {
            emu.mem.insert(a, v);
        }
        Lane {
            fetch_pc: decoded.entry,
            fetch_queue_cap: cfg.fetch_queue_cap(),
            cycle: 0,
            emu,
            mem: MemoryHierarchy::new(cfg.mem),
            bp: HybridPredictor::new(cfg.bpred),
            btb: Btb::new(cfg.btb),
            ras: ReturnAddressStack::new(),
            itc: IndirectTargetCache::new(IndirectConfig::default()),
            jrs: JrsConfidence::new(cfg.jrs),
            loop_pred: cfg.wish_loop_predictor.map(LoopPredictor::new),
            fetch_stall_until: 0,
            fetch_stall_reason: StallReason::Redirect,
            fetch_blocked: false,
            fetch_line: None,
            last_flush_cycle: None,
            cyc_retired_useful: false,
            cyc_retired_guard_false: false,
            cyc_mshr_stalled: false,
            cyc_writebuf_stalled: false,
            mode: Mode::Normal,
            pred_elim: [None; NUM_PREDS],
            pred_elim_live: 0,
            cmp2_partner: [None; NUM_PREDS],
            loop_last_pred: vec![None; n],
            dhp: DhpState::Off,
            pred_value_pht: vec![2; n],
            hot_sites: vec![HotSiteCounts::default(); n],
            conf_history: 0,
            next_seq: 1,
            front_id: 1,
            slots: Vec::new(),
            free: Vec::new(),
            br_arena: Vec::new(),
            br_free: Vec::new(),
            fe_queue: VecDeque::new(),
            rob: VecDeque::new(),
            ready_bits: vec![0; ready_cap / 64],
            ready_mask: ready_cap as u64 - 1,
            ready_count: 0,
            ring: (0..RING).map(|_| Vec::new()).collect(),
            ring_occ: [0; RING_WORDS],
            far_events: BinaryHeap::new(),
            far_min: u64::MAX,
            next_resolve: 0,
            unresolved: Vec::new(),
            store_queue: VecDeque::new(),
            blocked_loads: Vec::new(),
            dep_scratch: Vec::new(),
            waiter_pool: Vec::new(),
            gpr_prod: [None; NUM_GPRS],
            pred_prod: [None; NUM_PREDS],
            stats: SimStats::default(),
            halted: false,
            retire_log: spec.retire_log.then(Vec::new),
            decoded,
            cfg,
        }
    }

    /// Runs up to `budget` cycles of the per-cycle loop. All loop state
    /// lives in `self`, so splitting a run into rounds is invisible to the
    /// simulation.
    fn advance(&mut self, budget: u64) -> LaneStatus {
        let d = Arc::clone(&self.decoded);
        let mut left = budget;
        while !self.halted {
            if left == 0 {
                return LaneStatus::Running;
            }
            if self.cycle >= self.cfg.max_cycles {
                return LaneStatus::Limit(SimError::CycleLimitExceeded {
                    limit: self.cfg.max_cycles,
                });
            }
            // Event-driven fast-forward: when every stage is provably
            // unable to act until some future cycle, jump straight there,
            // bulk-applying the per-cycle idle accounting the skipped
            // cycles would have produced.
            if let Some(wake) = self.inert_until(&d) {
                let k = (wake - self.cycle).min(left);
                self.skip_inert_cycles(k);
                left -= k;
                continue;
            }
            left -= 1;
            self.resolve_branches(&d);
            let retired_before = self.stats.retired_uops;
            self.cyc_retired_useful = false;
            self.cyc_retired_guard_false = false;
            self.cyc_mshr_stalled = false;
            self.cyc_writebuf_stalled = false;
            self.retire(&d);
            let retired_any = self.stats.retired_uops != retired_before;
            if !retired_any {
                self.stats.retire_idle_cycles += 1;
            }
            if self.halted {
                // The halt-retiring iteration does not increment `cycle`.
                break;
            }
            self.issue(&d);
            let rob_before = self.rob.len();
            self.dispatch(&d);
            if self.rob.len() == rob_before {
                self.stats.dispatch_idle_cycles += 1;
            }
            let fetched_before = self.stats.fetched_uops;
            self.fetch(&d);
            if self.stats.fetched_uops == fetched_before {
                self.stats.fetch_idle_cycles += 1;
                self.account_fetch_idle();
            }
            self.account_cycle(retired_any);
            self.cycle += 1;
        }
        LaneStatus::Halted
    }

    /// Final statistics fold and architectural-state capture (the scalar
    /// run's post-loop tail).
    fn finish(&mut self) -> SimResult {
        self.stats.cycles = self.cycle;
        let (ic, l1, l2) = self.mem.stats();
        self.stats.icache = ic;
        self.stats.l1d = l1;
        self.stats.l2 = l2;
        self.stats.wrong_path_fills = self.mem.wrong_path_fills();
        for (pc, c) in self.hot_sites.iter().enumerate() {
            if *c != HotSiteCounts::default() {
                self.stats.hot_sites.insert(pc as u32, *c);
            }
        }
        SimResult {
            stats: std::mem::take(&mut self.stats),
            final_regs: self.emu.regs,
            final_preds: self.emu.preds,
            final_mem: self.emu.mem.sorted_entries().into_iter().collect(),
        }
    }

    // ------------------------------------------------------ cycle accounting

    fn account_fetch_idle(&mut self) {
        if self.fetch_blocked {
            self.stats.fetch_idle_blocked += 1;
        } else if self.cycle < self.fetch_stall_until {
            match self.fetch_stall_reason {
                StallReason::IMiss => self.stats.fetch_idle_imiss += 1,
                StallReason::Redirect => self.stats.fetch_idle_redirect += 1,
            }
        } else if self.fe_queue.len() >= self.fetch_queue_cap {
            self.stats.fetch_idle_queue_full += 1;
        } else {
            self.stats.fetch_idle_redirect += 1;
        }
    }

    fn account_cycle(&mut self, retired_any: bool) {
        let acc = &mut self.stats.cycle_accounting;
        if retired_any {
            if self.cyc_retired_useful {
                acc.useful_retire += 1;
            } else if self.cyc_retired_guard_false {
                acc.guard_false_retire += 1;
            } else {
                acc.select_uop_retire += 1;
            }
            return;
        }
        if !self.rob.is_empty() {
            if self.cyc_mshr_stalled {
                acc.mshr_full += 1;
            } else if self.cyc_writebuf_stalled {
                acc.writebuf_full += 1;
            } else if self.rob.len() >= self.cfg.rob_size {
                acc.rob_stall += 1;
            } else if self.mem.fill_pending_at(self.cycle) {
                acc.miss_pending += 1;
            } else {
                acc.exec_wait += 1;
            }
            return;
        }
        let in_flush_shadow = self
            .last_flush_cycle
            .is_some_and(|c| self.cycle <= c + self.cfg.pipeline_depth + 1);
        if in_flush_shadow {
            acc.flush_recovery += 1;
        } else if self.cycle < self.fetch_stall_until
            && self.fetch_stall_reason == StallReason::IMiss
            && !self.fetch_blocked
        {
            // Mirrors the scalar split: non-blocking I-fills in flight get
            // their own cause, flat I-miss stalls keep `fetch_imiss`.
            if self.mem.ifill_pending_at(self.cycle) {
                acc.imiss_pending += 1;
            } else {
                acc.fetch_imiss += 1;
            }
        } else if !self.fe_queue.is_empty() || self.fetch_blocked {
            acc.frontend_fill += 1;
        } else {
            acc.fetch_redirect += 1;
        }
    }

    // ------------------------------------------------- idle fast-forward

    /// If no pipeline stage can change any state this cycle, returns the
    /// earliest future cycle at which one could (clamped to `max_cycles`);
    /// `None` when the machine would act right now.
    ///
    /// The reasoning, stage by stage, given `ready_count == 0` (so issue
    /// has nothing to select and every non-issued ROB entry is waiting on
    /// a producer whose completion event is scheduled in the calendar):
    ///
    /// * *resolve* acts no earlier than `next_resolve`;
    /// * *retire* is gated on the head's `ready_cycle` (time), on resolve
    ///   (bounded by `next_resolve`), or on issue (bounded by the event
    ///   calendar);
    /// * *issue* acts no earlier than the next calendar event;
    /// * *dispatch* is gated on the front µop's pipeline-depth timer or on
    ///   retire freeing ROB space;
    /// * *fetch* is gated on its stall timer, on a flush (via resolve), or
    ///   on dispatch draining the front-end queue.
    ///
    /// The returned cycle is additionally bounded by the points where the
    /// per-cycle idle *classification* could change (flush-shadow end and
    /// MSHR fill expiry), so every skipped cycle provably classifies — and
    /// therefore counts — exactly as if it had been executed.
    fn inert_until(&self, d: &DecodedProgram) -> Option<u64> {
        if self.ready_count != 0 {
            return None; // something issues this cycle
        }
        let mut wake = self.next_resolve;
        if wake <= self.cycle {
            return None; // resolve may act this cycle
        }
        // Fetch.
        if !self.fetch_blocked {
            if self.cycle < self.fetch_stall_until {
                wake = wake.min(self.fetch_stall_until);
            } else if self.fe_queue.len() < self.fetch_queue_cap {
                return None; // fetch would fetch
            }
        }
        // Dispatch.
        if let Some(&front) = self.fe_queue.front() {
            let eligible =
                self.slots[front as usize].fetch_cycle + self.cfg.pipeline_depth;
            if eligible > self.cycle {
                wake = wake.min(eligible);
            } else if self.rob.len() + self.rob_slots_needed(d, front) <= self.cfg.rob_size
            {
                return None; // dispatch would dispatch
            }
        }
        // Retire.
        if let Some(head) = self.rob.front() {
            if head.flags & F_DONE != 0 {
                if head.ready_cycle > self.cycle {
                    wake = wake.min(head.ready_cycle);
                } else if head.meta & META_BRANCH == 0 || head.flags & F_RESOLVED != 0 {
                    return None; // head retires this cycle
                }
            }
        }
        // Issue: the next scheduled completion event.
        let cur = (self.cycle & (RING - 1)) as usize;
        if self.ring_occ[cur >> 6] & (1 << (cur & 63)) != 0 {
            return None; // events fire this cycle
        }
        wake = wake.min(self.far_min);
        if let Some(c) = self.next_ring_event() {
            wake = wake.min(c);
        }
        // Idle-classification boundaries.
        if self.rob.is_empty() {
            if let Some(c) = self.last_flush_cycle {
                let shadow_end = c + self.cfg.pipeline_depth + 2;
                if self.cycle < shadow_end {
                    wake = wake.min(shadow_end);
                }
            }
        } else if self.rob.len() < self.cfg.rob_size {
            if let Some(f) = self.mem.next_fill_change_after(self.cycle) {
                wake = wake.min(f);
            }
        }
        wake = wake.min(self.cfg.max_cycles);
        (wake > self.cycle).then_some(wake)
    }

    /// Advances `cycle` by `k` provably-inert cycles, applying the idle
    /// accounting each would have produced. The classification inputs are
    /// constant across the window by construction of [`Lane::inert_until`].
    fn skip_inert_cycles(&mut self, k: u64) {
        self.stats.retire_idle_cycles += k;
        self.stats.dispatch_idle_cycles += k;
        self.stats.fetch_idle_cycles += k;
        if self.fetch_blocked {
            self.stats.fetch_idle_blocked += k;
        } else if self.cycle < self.fetch_stall_until {
            match self.fetch_stall_reason {
                StallReason::IMiss => self.stats.fetch_idle_imiss += k,
                StallReason::Redirect => self.stats.fetch_idle_redirect += k,
            }
        } else if self.fe_queue.len() >= self.fetch_queue_cap {
            self.stats.fetch_idle_queue_full += k;
        } else {
            self.stats.fetch_idle_redirect += k;
        }
        let in_flush_shadow = self
            .last_flush_cycle
            .is_some_and(|c| self.cycle <= c + self.cfg.pipeline_depth + 1);
        let acc = &mut self.stats.cycle_accounting;
        if !self.rob.is_empty() {
            if self.rob.len() >= self.cfg.rob_size {
                acc.rob_stall += k;
            } else if self.mem.fill_pending_at(self.cycle) {
                acc.miss_pending += k;
            } else {
                acc.exec_wait += k;
            }
        } else if in_flush_shadow {
            acc.flush_recovery += k;
        } else if self.cycle < self.fetch_stall_until
            && self.fetch_stall_reason == StallReason::IMiss
            && !self.fetch_blocked
        {
            // The split predicate is constant across the inert window: the
            // wake cycle never exceeds `fetch_stall_until`, which is the
            // demand I-fill's arrival — the I-MSHR entry stays busy (and
            // under the flat model stays absent) for every skipped cycle.
            if self.mem.ifill_pending_at(self.cycle) {
                acc.imiss_pending += k;
            } else {
                acc.fetch_imiss += k;
            }
        } else if !self.fe_queue.is_empty() || self.fetch_blocked {
            acc.frontend_fill += k;
        } else {
            acc.fetch_redirect += k;
        }
        self.cycle += k;
    }

    /// Smallest cycle in `(cycle, cycle + RING)` with a scheduled calendar
    /// event, scanning the occupancy bitmap circularly from `cycle + 1`.
    fn next_ring_event(&self) -> Option<u64> {
        let start = ((self.cycle + 1) & (RING - 1)) as usize;
        let (w0, off) = (start >> 6, start & 63);
        for i in 0..=RING_WORDS {
            let w = (w0 + i) & (RING_WORDS - 1);
            let mut bits = self.ring_occ[w];
            if i == 0 {
                bits &= !0u64 << off;
            } else if i == RING_WORDS {
                bits &= (1u64 << off) - 1;
            }
            if bits != 0 {
                let b = (w * 64 + bits.trailing_zeros() as usize) as u64;
                let delta = b.wrapping_sub(self.cycle + 1) & (RING - 1);
                return Some(self.cycle + 1 + delta);
            }
        }
        None
    }

    // ------------------------------------------------------------- wakeup

    fn ready_set(&mut self, id: u64) {
        let pos = (id & self.ready_mask) as usize;
        self.ready_bits[pos >> 6] |= 1 << (pos & 63);
        self.ready_count += 1;
    }

    /// Extracts the lowest ready id ≥ `front_id`, scanning the circular
    /// bitmap from the window's start. All set bits are live entry ids in
    /// `[front_id, front_id + rob.len())`, a window no wider than the
    /// bitmap, so one wrap-around pass finds the minimum.
    fn ready_pop_lowest(&mut self) -> Option<u64> {
        if self.ready_count == 0 {
            return None;
        }
        let nw = self.ready_bits.len();
        let start = (self.front_id & self.ready_mask) as usize;
        let (w0, off) = (start >> 6, start & 63);
        for i in 0..=nw {
            let w = (w0 + i) & (nw - 1);
            let mut bits = self.ready_bits[w];
            if i == 0 {
                bits &= !0u64 << off;
            } else if i == nw {
                bits &= (1u64 << off) - 1;
            }
            if bits != 0 {
                let b = bits.trailing_zeros() as usize;
                self.ready_bits[w] &= !(1u64 << b);
                self.ready_count -= 1;
                let pos = (w * 64 + b) as u64;
                let delta = pos.wrapping_sub(self.front_id) & self.ready_mask;
                return Some(self.front_id + delta);
            }
        }
        unreachable!("ready_count > 0 implies a set bit");
    }

    /// Clears ready bits for the squashed id range `(boundary, boundary +
    /// count]` (flush purge), word-at-a-time.
    fn ready_clear_above(&mut self, boundary: u64, count: u64) {
        let mut id = boundary + 1;
        let end = id + count.min(self.ready_mask + 1);
        while id < end {
            let pos = (id & self.ready_mask) as usize;
            let (w, off) = (pos >> 6, (pos & 63) as u64);
            let span = (64 - off).min(end - id);
            let mask = if span == 64 { !0u64 } else { ((1u64 << span) - 1) << off };
            let cleared = self.ready_bits[w] & mask;
            self.ready_count -= cleared.count_ones();
            self.ready_bits[w] &= !mask;
            id += span;
        }
    }

    /// Schedules a completion event: calendar bucket if within the ring
    /// horizon, overflow heap otherwise. `at` is always in the future.
    fn push_event(&mut self, at: u64, id: u64) {
        if at - self.cycle >= RING {
            self.far_events.push(Reverse((at, id)));
            self.far_min = self.far_min.min(at);
        } else {
            let b = (at & (RING - 1)) as usize;
            self.ring[b].push(id);
            self.ring_occ[b >> 6] |= 1 << (b & 63);
        }
    }

    fn alloc_br(&mut self, m: BrMeta) -> u32 {
        match self.br_free.pop() {
            Some(i) => {
                self.br_arena[i as usize] = m;
                i
            }
            None => {
                self.br_arena.push(m);
                (self.br_arena.len() - 1) as u32
            }
        }
    }

    /// Returns a µop slot (and its branch metadata, if any) to the free
    /// lists. Compute halves never own their slot — the Select twin frees
    /// it — so callers guard on role.
    fn free_slot(&mut self, slot: u32) {
        let br = self.slots[slot as usize].br;
        if br != NO_BR {
            self.br_free.push(br);
        }
        self.free.push(slot);
    }

    fn recycle_spill(&mut self, w: WaiterList) {
        if w.spill.capacity() > 0 {
            let mut s = w.spill;
            s.clear();
            self.waiter_pool.push(s);
        }
    }

    fn wake_list(&mut self, w: WaiterList) {
        let n = w.len as usize;
        for i in 0..n.min(WAITERS_INLINE) {
            self.dec_unready(w.inline[i]);
        }
        for i in WAITERS_INLINE..n {
            self.dec_unready(w.spill[i - WAITERS_INLINE]);
        }
        self.recycle_spill(w);
    }

    fn wake(&mut self, id: u64) {
        if self.rob.is_empty() {
            return; // producer retired with the rest of the window
        }
        if id < self.front_id {
            return; // retired: its waiters were already woken at retire
        }
        let idx = (id - self.front_id) as usize;
        debug_assert!(idx < self.rob.len(), "events are purged on flush");
        let w = std::mem::take(&mut self.rob[idx].waiters);
        self.wake_list(w);
    }

    fn dec_unready(&mut self, id: u64) {
        debug_assert!(!self.rob.is_empty(), "waiters are live entries");
        let idx = (id - self.front_id) as usize;
        let e = &mut self.rob[idx];
        debug_assert!(e.unready > 0, "each registration decrements once");
        debug_assert!(e.flags & F_ISSUED == 0, "issued entries had no deps");
        e.unready -= 1;
        if e.unready == 0 {
            self.ready_set(id);
        }
    }

    // ----------------------------------------------------------------- retire

    fn retire(&mut self, d: &DecodedProgram) {
        let mut retired = 0;
        while retired < self.cfg.retire_width {
            let Some(head) = self.rob.front() else { break };
            if head.flags & F_DONE == 0 || head.ready_cycle > self.cycle {
                break;
            }
            if head.meta & META_BRANCH != 0 && head.flags & F_RESOLVED == 0 {
                break;
            }
            debug_assert!(
                head.flags & F_RESOLVED != 0
                    || head.role != Role::Whole
                    || self.slots[head.slot as usize].pred_check.is_none(),
                "pred checks resolve before retiring"
            );
            let mut entry = self.rob.pop_front().expect("checked non-empty");
            self.front_id += 1;
            let waiters = std::mem::take(&mut entry.waiters);
            self.wake_list(waiters);
            retired += 1;
            self.retire_entry(d, &entry);
            // Compute halves share their slot with the Select twin, which
            // retires later and frees it.
            if entry.role != Role::Compute {
                self.free_slot(entry.slot);
            }
            if self.halted {
                return;
            }
        }
    }

    fn retire_entry(&mut self, d: &DecodedProgram, e: &RobSlim) {
        let (seq, pc, info, br_ref, hw_guard, pred_check) = {
            let s = &self.slots[e.slot as usize];
            (s.seq, s.pc, s.info, s.br, s.hw_guard, s.pred_check)
        };
        let pi = &d.pcs[pc as usize];
        let insn = &pi.insn;
        let dhp = br_ref != NO_BR && self.br_arena[br_ref as usize].dhp;
        if let Some(log) = self.retire_log.as_mut() {
            if e.role != Role::Compute {
                let defs = insn.def_preds();
                let mut pred_writes = [None, None];
                for slot in 0..2 {
                    if let (Some(p), Some(v)) = (defs[slot], info.pred_values[slot]) {
                        pred_writes[slot] = Some((p.index() as u8, v));
                    }
                }
                log.push(wishbranch_isa::RetireRecord {
                    seq,
                    pc,
                    next_pc: info.followed_next,
                    guard_true: info.guard_true,
                    taken: info.actual_taken,
                    forced: info.followed_next != info.actual_next,
                    wish: insn.wish,
                    dhp,
                    hw_guard: hw_guard.is_some(),
                    reg_write: info.reg_write,
                    pred_writes,
                    mem_write: if info.is_store {
                        info.mem_addr.zip(info.store_value)
                    } else {
                        None
                    },
                    halted: info.halted,
                });
            }
        }
        self.stats.retired_uops += 1;
        if e.role == Role::Select {
            self.stats.retired_select_uops += 1;
        }
        let guard_false = e.role != Role::Compute
            && !info.guard_true
            && (insn.guard.is_some() || hw_guard.is_some());
        if guard_false {
            self.stats.retired_guard_false += 1;
            self.hot_sites[pc as usize].guard_false_uops += 1;
            self.cyc_retired_guard_false = true;
        } else if e.role != Role::Select {
            self.cyc_retired_useful = true;
        }
        self.emu.commit_through(seq);

        if pi.is_halt {
            self.halted = true;
            return;
        }

        if pred_check.is_some() {
            self.stats.pred_value_predictions += 1;
            if let Some(actual) = info.pred_values[0] {
                let c = &mut self.pred_value_pht[pc as usize];
                if actual {
                    *c = (*c + 1).min(3);
                } else {
                    *c = c.saturating_sub(1);
                }
            }
        }

        if e.role != Role::Whole || !pi.is_branch {
            return;
        }
        if br_ref == NO_BR {
            return;
        }
        // Copy the small predictor-bookkeeping fields out of the arena so
        // the update calls below can borrow `self` mutably.
        let br = &self.br_arena[br_ref as usize];
        let bp_token = br.bp_token;
        let conf_high = br.conf_high;
        let conf_ghr = br.conf_ghr;
        let predictor_said_taken = br.predictor_said_taken;
        let ghr_checkpoint = br.ghr_checkpoint;
        let loop_token = br.loop_token;
        let mispredicted = e.flags & F_MISPRED != 0;
        match insn.kind {
            InsnKind::Branch {
                kind: BranchKind::Cond { .. },
                ..
            } => {
                self.stats.retired_cond_branches += 1;
                let actual = info.actual_taken;
                if let Some(token) = bp_token {
                    self.bp.update(pc, &token, actual);
                }
                if mispredicted {
                    self.stats.retired_mispredicted += 1;
                }
                if let Some(conf_high) = conf_high {
                    let predictor_correct = predictor_said_taken == actual;
                    if !self.cfg.oracles.perfect_confidence {
                        self.jrs.update(pc, conf_ghr, predictor_correct);
                    }
                    self.conf_history = (self.conf_history << 1) | u64::from(actual);
                    let counts: Option<&mut WishClassCounts> = match insn.wish {
                        Some(WishType::Jump) => Some(&mut self.stats.wish_jumps),
                        Some(WishType::Join) => Some(&mut self.stats.wish_joins),
                        Some(WishType::Loop) => Some(&mut self.stats.wish_loops),
                        None => None, // DHP branch
                    };
                    if let Some(counts) = counts {
                        match (conf_high, predictor_correct) {
                            (true, true) => counts.high_correct += 1,
                            (true, false) => counts.high_mispredicted += 1,
                            (false, true) => counts.low_correct += 1,
                            (false, false) => counts.low_mispredicted += 1,
                        }
                    }
                    match e.loop_class {
                        LC_EARLY => self.stats.loop_early_exits += 1,
                        LC_LATE => self.stats.loop_late_exits += 1,
                        LC_NOEXIT => self.stats.loop_no_exits += 1,
                        _ => {}
                    }
                }
                if insn.wish == Some(WishType::Loop) {
                    if let (Some(lp), Some(ltok)) = (self.loop_pred.as_mut(), loop_token) {
                        lp.update(pc, &ltok, actual);
                    }
                }
                if insn.wish == Some(WishType::Loop) {
                    if let Some((_, s)) = self.loop_last_pred[pc as usize] {
                        if s == seq {
                            self.loop_last_pred[pc as usize] = None;
                        }
                    }
                }
            }
            InsnKind::Branch {
                kind: BranchKind::Indirect { .. },
                ..
            } => {
                self.itc.update(pc, ghr_checkpoint, info.actual_next);
                if mispredicted {
                    self.stats.retired_mispredicted += 1;
                }
            }
            _ => {
                if mispredicted {
                    self.stats.retired_mispredicted += 1;
                }
            }
        }
    }

    // ---------------------------------------------------------- resolution

    fn resolve_branches(&mut self, d: &DecodedProgram) {
        // Nothing can become eligible before `next_resolve` (maintained at
        // issue when a branch/pred-check completes, and by the scan below);
        // skip the scan entirely until then.
        if self.cycle < self.next_resolve {
            return;
        }
        // Minimum completion cycle among the done-but-not-yet-eligible
        // entries. Not-yet-done entries are covered by the issue-side
        // update; squashed entries can only make this too small (an extra
        // scan), never too large.
        let mut min_future = u64::MAX;
        let mut i = 0;
        while i < self.unresolved.len() {
            let id = self.unresolved[i];
            debug_assert!(id >= self.front_id, "unresolved entries never retire first");
            let idx = (id - self.front_id) as usize;
            let e = &self.rob[idx];
            if e.flags & F_DONE == 0 || e.ready_cycle > self.cycle {
                if e.flags & F_DONE != 0 {
                    min_future = min_future.min(e.ready_cycle);
                }
                i += 1;
                continue;
            }
            let has_pred_check = e.meta & META_PREDCHK != 0;
            self.unresolved.remove(i);
            if has_pred_check {
                self.resolve_pred_check(d, idx);
            } else {
                self.resolve_one(d, idx);
            }
        }
        self.next_resolve = min_future;
    }

    fn resolve_pred_check(&mut self, d: &DecodedProgram, idx: usize) -> bool {
        self.rob[idx].flags |= F_RESOLVED;
        let (predicted, actual, site_pc) = {
            let s = &self.slots[self.rob[idx].slot as usize];
            (s.pred_check.expect("caller checked"), s.info.pred_values[0], s.pc)
        };
        // Guard-false definitions keep their old value; treat as correct.
        let Some(actual) = actual else {
            return false;
        };
        if actual == predicted {
            return false;
        }
        self.rob[idx].flags |= F_MISPRED;
        self.stats.pred_value_mispredictions += 1;
        self.stats.flushes += 1;
        self.hot_sites[site_pc as usize].flushes += 1;
        self.flush_after(d, idx, site_pc + 1);
        true
    }

    fn resolve_one(&mut self, d: &DecodedProgram, idx: usize) -> bool {
        self.rob[idx].flags |= F_RESOLVED;
        let slot = self.rob[idx].slot as usize;
        let (br_ref, actual_next, actual_taken, site_pc) = {
            let s = &self.slots[slot];
            (s.br, s.info.actual_next, s.info.actual_taken, s.pc)
        };
        debug_assert!(br_ref != NO_BR, "branches always carry metadata");
        let (predicted_next, fetch_mode, dhp) = {
            let br = &self.br_arena[br_ref as usize];
            (br.predicted_next, br.fetch_mode, br.dhp)
        };
        let mispredicted = predicted_next != actual_next;
        if mispredicted {
            self.rob[idx].flags |= F_MISPRED;
        }
        if !mispredicted {
            return false;
        }
        let insn = &d.pcs[site_pc as usize].insn;
        let is_wish = insn.is_wish_branch() && self.cfg.wish_enabled;
        let fetched_low_conf = matches!(fetch_mode, Mode::LowConf { .. });

        if dhp {
            self.stats.flushes_avoided += 1;
            self.stats.dhp_flushes_avoided += 1;
            self.hot_sites[site_pc as usize].flushes_avoided += 1;
            return false;
        }
        let mut flush = true;
        if is_wish && fetched_low_conf {
            match insn.wish.expect("is_wish") {
                WishType::Jump | WishType::Join => {
                    flush = false;
                }
                WishType::Loop => {
                    if actual_taken {
                        self.rob[idx].loop_class = LC_EARLY;
                    } else {
                        match self.loop_last_pred[site_pc as usize] {
                            Some((false, _)) => {
                                self.rob[idx].loop_class = LC_LATE;
                                flush = false;
                            }
                            _ => {
                                self.rob[idx].loop_class = LC_NOEXIT;
                            }
                        }
                    }
                }
            }
        }
        if !flush {
            self.stats.flushes_avoided += 1;
            self.hot_sites[site_pc as usize].flushes_avoided += 1;
            return false;
        }
        self.stats.flushes += 1;
        self.hot_sites[site_pc as usize].flushes += 1;
        // The branch retires having followed the architectural path.
        self.slots[slot].info.followed_next = actual_next;
        self.flush_after(d, idx, actual_next);
        true
    }

    fn flush_after(&mut self, d: &DecodedProgram, idx: usize, resume_pc: u32) {
        let (seq, flush_pc, br_ref, actual_taken) = {
            let s = &self.slots[self.rob[idx].slot as usize];
            (s.seq, s.pc, s.br, s.info.actual_taken)
        };
        debug_assert!(br_ref != NO_BR, "flush source is a branch");
        // Small fields out of the arena up front; the 272-byte RAS
        // checkpoint is restored by reference below, never copied.
        let (ghr_checkpoint, loop_token) = {
            let br = &self.br_arena[br_ref as usize];
            (br.ghr_checkpoint, br.loop_token)
        };
        let boundary = self.front_id + idx as u64;
        let is_cond = d.pcs[flush_pc as usize].is_cond_branch;

        // Squash younger ROB entries and the whole front-end queue.
        let squashed_rob = self.rob.len() - (idx + 1);
        while self.rob.len() > idx + 1 {
            let dead = self.rob.pop_back().expect("length checked");
            self.recycle_spill(dead.waiters);
            if dead.role != Role::Compute {
                self.free_slot(dead.slot);
            }
        }
        let squashed_total = squashed_rob as u64 + self.fe_queue.len() as u64;
        self.stats.squashed_uops += squashed_total;
        while let Some(slot) = self.fe_queue.pop_front() {
            self.free_slot(slot);
        }
        // Ids stay contiguous implicitly: the next id is front_id + len.
        // Events and ready bits of squashed entries must go eagerly: ids
        // are reused for the refetched path.
        self.ready_clear_above(boundary, squashed_rob as u64);
        for w in 0..RING_WORDS {
            let mut bits = self.ring_occ[w];
            while bits != 0 {
                let b = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let v = &mut self.ring[b];
                v.retain(|&id| id <= boundary);
                if v.is_empty() {
                    self.ring_occ[w] &= !(1u64 << (b & 63));
                }
            }
        }
        if self.far_min != u64::MAX {
            let mut far = std::mem::take(&mut self.far_events).into_vec();
            far.retain(|&Reverse((_, id))| id <= boundary);
            self.far_events = far.into();
            self.far_min = self
                .far_events
                .peek()
                .map_or(u64::MAX, |&Reverse((c, _))| c);
        }
        while self.store_queue.back().is_some_and(|&id| id > boundary) {
            self.store_queue.pop_back();
        }
        let keep = self.unresolved.partition_point(|&id| id <= boundary);
        self.unresolved.truncate(keep);

        // Rebuild rename maps from the surviving entries, dropping their
        // squashed waiters along the way.
        self.gpr_prod = [None; NUM_GPRS];
        self.pred_prod = [None; NUM_PREDS];
        for i in 0..self.rob.len() {
            let id = self.front_id + i as u64;
            let (pc, role) = {
                let e = &mut self.rob[i];
                e.waiters.truncate_above(boundary);
                (e.pc, e.role)
            };
            if role == Role::Compute {
                continue; // temps are invisible to the rename map
            }
            let info = &d.pcs[pc as usize];
            if let Some(dg) = info.def_gpr {
                self.gpr_prod[dg.index()] = Some(id);
            }
            for p in info.def_preds.into_iter().flatten() {
                if !p.is_hardwired_true() {
                    self.pred_prod[p.index()] = Some(id);
                }
            }
        }

        // Roll the speculative world back to just after the branch.
        self.emu.rollback_after(seq);
        self.ras.restore(&self.br_arena[br_ref as usize].ras_checkpoint);
        if is_cond {
            self.bp.restore_ghr(ghr_checkpoint, actual_taken);
        } else {
            self.bp.set_ghr(ghr_checkpoint);
        }
        self.pred_elim = [None; NUM_PREDS];
        self.pred_elim_live = 0;
        self.cmp2_partner = [None; NUM_PREDS];
        self.mode = Mode::Normal;
        self.dhp = DhpState::Off;
        for &pc in &d.wish_loop_pcs {
            if let Some((_, s)) = self.loop_last_pred[pc as usize] {
                if s > seq {
                    self.loop_last_pred[pc as usize] = None;
                }
            }
        }
        if let (Some(lp), Some(ltok)) = (self.loop_pred.as_mut(), loop_token) {
            lp.repair(flush_pc, &ltok, actual_taken);
        }

        // Redirect fetch. Pending wrong-path I-fills (other lines than the
        // resume target's) are cancelled before the resteer.
        self.mem
            .squash_wrong_path_ifills(self.cycle, insn_addr(resume_pc));
        self.fetch_pc = resume_pc;
        self.fetch_blocked = false;
        self.fetch_line = None;
        self.fetch_stall_until = self.cycle + 1;
        self.fetch_stall_reason = StallReason::Redirect;
        self.last_flush_cycle = Some(self.cycle);
    }

    // -------------------------------------------------------------- issue

    fn store_executed(&self, id: u64) -> bool {
        if self.rob.is_empty() || id < self.front_id {
            return true; // retired
        }
        let e = &self.rob[(id - self.front_id) as usize];
        e.flags & F_DONE != 0 && e.ready_cycle <= self.cycle
    }

    fn issue(&mut self, d: &DecodedProgram) {
        // Fire the completion events due this cycle, waking dependents.
        // Within-cycle order is free: wakeups only decrement counters and
        // set ready bits, both order-independent.
        let b = (self.cycle & (RING - 1)) as usize;
        if self.ring_occ[b >> 6] & (1 << (b & 63)) != 0 {
            self.ring_occ[b >> 6] &= !(1u64 << (b & 63));
            let mut ids = std::mem::take(&mut self.ring[b]);
            for id in ids.drain(..) {
                self.wake(id);
            }
            self.ring[b] = ids;
        }
        if self.far_min <= self.cycle {
            while let Some(&Reverse((c, id))) = self.far_events.peek() {
                if c > self.cycle {
                    break;
                }
                self.far_events.pop();
                self.wake(id);
            }
            self.far_min = self
                .far_events
                .peek()
                .map_or(u64::MAX, |&Reverse((c, _))| c);
        }
        // Oldest not-yet-executed store (conservative load/store ordering).
        while let Some(&sid) = self.store_queue.front() {
            if self.store_executed(sid) {
                self.store_queue.pop_front();
            } else {
                break;
            }
        }
        let store_limit = self.store_queue.front().copied();

        let mut issued = 0;
        debug_assert!(self.blocked_loads.is_empty());
        while issued < self.cfg.issue_width {
            let Some(id) = self.ready_pop_lowest() else { break };
            let idx = (id - self.front_id) as usize;
            let e = &self.rob[idx];
            debug_assert!(e.flags & F_ISSUED == 0 && e.unready == 0);
            let is_load = e.meta & META_CLASS == EC_LOAD;
            if is_load && store_limit.is_some_and(|limit| id > limit) {
                match self.forward_state(d, idx) {
                    ForwardState::Forward => {}
                    ForwardState::PartialOverlap => {
                        self.stats.load_replays += 1;
                        self.blocked_loads.push(id);
                        continue;
                    }
                    ForwardState::NoMatch => {
                        self.blocked_loads.push(id);
                        continue;
                    }
                }
            }
            let Some(lat) = self.exec_latency(d, idx) else {
                // The memory access could not be accepted this cycle —
                // MSHRs, write buffer or ports all busy; `exec_latency`
                // recorded which. Retry next cycle without consuming
                // issue bandwidth (mirrors blocked loads).
                self.blocked_loads.push(id);
                continue;
            };
            let ready_cycle = self.cycle + lat;
            let e = &mut self.rob[idx];
            e.flags |= F_ISSUED | F_DONE;
            e.ready_cycle = ready_cycle;
            // Lazy events: schedule a wakeup only if someone is waiting
            // (later registrants schedule it themselves at dispatch).
            let has_waiters = e.waiters.len > 0;
            if has_waiters {
                e.flags |= F_EVENT;
            }
            let track_resolve =
                e.role == Role::Whole && e.meta & (META_BRANCH | META_PREDCHK) != 0;
            if has_waiters {
                self.push_event(ready_cycle, id);
            }
            if track_resolve {
                self.next_resolve = self.next_resolve.min(ready_cycle);
            }
            issued += 1;
        }
        // Blocked loads stay ready; they compete again next cycle.
        while let Some(id) = self.blocked_loads.pop() {
            self.ready_set(id);
        }
    }

    fn exec_latency(&mut self, d: &DecodedProgram, idx: usize) -> Option<u64> {
        let e = &self.rob[idx];
        // The common single-cycle classes never touch the µop slot.
        match e.meta & META_CLASS {
            EC_UNIT => return Some(1),
            EC_MUL => return Some(self.cfg.mul_latency),
            EC_DIV => return Some(self.cfg.div_latency),
            _ => {}
        }
        let is_load = e.meta & META_CLASS == EC_LOAD;
        let role = e.role;
        let pc = e.pc;
        let (guard_true, mem_addr) = {
            let s = &self.slots[e.slot as usize];
            (s.info.guard_true, s.info.mem_addr)
        };
        if is_load {
            let accesses_mem = match role {
                Role::Whole => guard_true,
                Role::Compute => true,
                Role::Select => false,
            };
            if accesses_mem {
                if let Some(addr) = mem_addr {
                    if self.cfg.mem.store_forwarding
                        && matches!(self.forward_state(d, idx), ForwardState::Forward)
                    {
                        self.stats.store_forwards += 1;
                        return Some(1 + self.cfg.mem.l1d.latency);
                    }
                    if self.mem.realistic() {
                        return match self.mem.data_access_nonblocking(
                            addr,
                            false,
                            u64::from(pc),
                            self.cycle,
                        ) {
                            AccessOutcome::Ready(lat) => Some(1 + lat),
                            AccessOutcome::Pending(fill) => {
                                Some(1 + fill.saturating_sub(self.cycle).max(1))
                            }
                            AccessOutcome::MshrFull => {
                                self.cyc_mshr_stalled = true;
                                self.stats.mshr_full_stalls += 1;
                                None
                            }
                            AccessOutcome::PortBusy => {
                                self.stats.port_conflict_stalls += 1;
                                None
                            }
                        };
                    }
                    return Some(1 + self.mem.data_access_at(addr, false, self.cycle));
                }
            }
            Some(1)
        } else {
            // Store.
            if guard_true && role != Role::Select {
                if let Some(addr) = mem_addr {
                    if self.mem.realistic() {
                        // Write-allocate: the store needs an MSHR on a
                        // miss like a load, plus (when enabled) a free
                        // write-buffer entry to drain through. Once
                        // accepted it completes in one cycle — the drain
                        // continues asynchronously behind it.
                        match self
                            .mem
                            .store_access_nonblocking(addr, u64::from(pc), self.cycle)
                        {
                            StoreOutcome::Accepted => {}
                            StoreOutcome::WriteBufFull => {
                                self.cyc_writebuf_stalled = true;
                                self.stats.writebuf_full_stalls += 1;
                                return None;
                            }
                            StoreOutcome::MshrFull => {
                                self.cyc_mshr_stalled = true;
                                self.stats.mshr_full_stalls += 1;
                                return None;
                            }
                            StoreOutcome::PortBusy => {
                                self.stats.port_conflict_stalls += 1;
                                return None;
                            }
                        }
                    } else {
                        self.mem.data_access_at(addr, true, self.cycle);
                    }
                }
            }
            Some(1)
        }
    }

    fn forward_state(&self, d: &DecodedProgram, idx: usize) -> ForwardState {
        if !self.cfg.mem.store_forwarding {
            return ForwardState::NoMatch;
        }
        let e = &self.rob[idx];
        let s = &self.slots[e.slot as usize];
        let accesses_mem = match e.role {
            Role::Whole => s.info.guard_true,
            Role::Compute => true,
            Role::Select => false,
        };
        let Some(la) = s.info.mem_addr else {
            return ForwardState::NoMatch;
        };
        if !accesses_mem {
            return ForwardState::NoMatch;
        }
        let _ = d;
        let id = self.front_id + idx as u64;
        for &sid in self.store_queue.iter().rev() {
            if sid >= id {
                continue; // younger than the load
            }
            let se = &self.rob[(sid - self.front_id) as usize];
            let ss = &self.slots[se.slot as usize];
            // Guard-false and select-placeholder stores write nothing.
            if !ss.info.guard_true || se.role == Role::Select {
                continue;
            }
            let Some(sa) = ss.info.mem_addr else { continue };
            if sa == la {
                if se.flags & F_ISSUED != 0 || se.unready == 0 {
                    return ForwardState::Forward;
                }
                return ForwardState::NoMatch;
            }
            if sa < la + 8 && la < sa + 8 {
                return ForwardState::PartialOverlap;
            }
        }
        ForwardState::NoMatch
    }

    // ----------------------------------------------------------- dispatch

    fn dispatch(&mut self, d: &DecodedProgram) {
        let mut dispatched = 0;
        while dispatched < self.cfg.issue_width {
            let Some(&front) = self.fe_queue.front() else { break };
            if self.slots[front as usize].fetch_cycle + self.cfg.pipeline_depth > self.cycle {
                break;
            }
            let needed = self.rob_slots_needed(d, front);
            if self.rob.len() + needed > self.cfg.rob_size {
                break;
            }
            let slot = self.fe_queue.pop_front().expect("checked non-empty");
            self.rename_into_rob(d, slot);
            dispatched += needed;
        }
    }

    fn rob_slots_needed(&self, d: &DecodedProgram, slot: u32) -> usize {
        let s = &self.slots[slot as usize];
        if self.cfg.pred_mechanism == PredMechanism::SelectUop
            && s.guard_pred_elim.is_none()
            && d.pcs[s.pc as usize].select_expandable
        {
            2
        } else {
            1
        }
    }

    /// Pushes one ROB entry whose dependences are in `dep_scratch`.
    fn push_rob(&mut self, d: &DecodedProgram, slot: u32, role: Role) -> u64 {
        let id = self.front_id + self.rob.len() as u64;
        let mut unready = 0u32;
        let have_front = !self.rob.is_empty();
        let scratch = std::mem::take(&mut self.dep_scratch);
        for &dep in &scratch {
            if !have_front {
                continue; // empty window: every producer retired
            }
            if dep < self.front_id {
                continue; // producer retired
            }
            let idx = (dep - self.front_id) as usize;
            let value_ready = match self.rob.get(idx) {
                Some(p) => p.flags & F_DONE != 0 && p.ready_cycle <= self.cycle,
                None => true,
            };
            if value_ready {
                continue;
            }
            let mut schedule = None;
            {
                let p = &mut self.rob[idx];
                if p.waiters.will_spill() && p.waiters.spill.capacity() == 0 {
                    if let Some(v) = self.waiter_pool.pop() {
                        p.waiters.spill = v;
                    }
                }
                p.waiters.push(id);
                // First waiter on an already-issued producer: schedule the
                // completion event it skipped at issue (lazy events).
                if p.flags & (F_ISSUED | F_EVENT) == F_ISSUED {
                    p.flags |= F_EVENT;
                    schedule = Some(p.ready_cycle);
                }
            }
            if let Some(at) = schedule {
                self.push_event(at, dep);
            }
            unready += 1;
        }
        self.dep_scratch = scratch;
        let (pc, pred_check) = {
            let s = &self.slots[slot as usize];
            (s.pc, s.pred_check)
        };
        let pi = &d.pcs[pc as usize];
        let unresolved = role == Role::Whole && (pi.is_branch || pred_check.is_some());
        let meta = pi.exec_class
            | if pi.is_branch { META_BRANCH } else { 0 }
            | if pred_check.is_some() { META_PREDCHK } else { 0 };
        self.rob.push_back(RobSlim {
            slot,
            pc,
            unready,
            meta,
            role,
            flags: 0,
            loop_class: 0,
            ready_cycle: 0,
            waiters: WaiterList::default(),
        });
        if unready == 0 {
            self.ready_set(id);
        }
        if pi.is_store {
            self.store_queue.push_back(id);
        }
        if unresolved {
            self.unresolved.push(id);
        }
        id
    }

    fn guard_dep(&self, d: &DecodedProgram, slot: u32, oracles: &OracleConfig) -> GuardPlan {
        let s = &self.slots[slot as usize];
        let Some(g) = d.pcs[s.pc as usize].insn.guard else {
            return GuardPlan::None;
        };
        if oracles.no_pred_dependencies {
            return GuardPlan::Known(s.info.guard_true);
        }
        if let Some(v) = s.guard_pred_elim {
            return GuardPlan::Known(v);
        }
        match self.pred_prod[g.index()] {
            Some(id) => {
                if self.cfg.predicate_prediction && !self.rob.is_empty() && id >= self.front_id {
                    let idx = (id - self.front_id) as usize;
                    assert!(
                        idx < self.rob.len(),
                        "producer id {id} front {} len {}",
                        self.front_id,
                        self.rob.len()
                    );
                    let ps = &self.slots[self.rob[idx].slot as usize];
                    if let Some(predicted) = ps.pred_check {
                        let defs = d.pcs[ps.pc as usize].def_preds;
                        if defs[0] == Some(g) {
                            return GuardPlan::Known(predicted);
                        }
                        if defs[1] == Some(g) {
                            return GuardPlan::Known(!predicted);
                        }
                    }
                }
                GuardPlan::Wait(id)
            }
            None => GuardPlan::Ready,
        }
    }

    fn push_src_deps(&mut self, info: &PcInfo, oracles: &OracleConfig) {
        for r in info.gpr_srcs.into_iter().flatten() {
            if let Some(id) = self.gpr_prod[r.index()] {
                self.dep_scratch.push(id);
            }
        }
        for p in info.pred_srcs.into_iter().flatten() {
            let eliminated = !info.is_branch
                && self.pred_elim_active()
                && self.pred_elim[p.index()].is_some();
            if oracles.no_pred_dependencies && !info.is_branch {
                continue;
            }
            if eliminated {
                continue;
            }
            if let Some(id) = self.pred_prod[p.index()] {
                self.dep_scratch.push(id);
            }
        }
    }

    fn push_old_dest_deps(&mut self, info: &PcInfo) {
        if let Some(dg) = info.def_gpr {
            if let Some(id) = self.gpr_prod[dg.index()] {
                self.dep_scratch.push(id);
            }
        }
        for p in info.def_preds.into_iter().flatten() {
            if let Some(id) = self.pred_prod[p.index()] {
                self.dep_scratch.push(id);
            }
        }
    }

    fn rename_into_rob(&mut self, d: &DecodedProgram, slot: u32) {
        let oracles = self.cfg.oracles;
        let (pc, hw_guard) = {
            let s = &self.slots[slot as usize];
            (s.pc, s.hw_guard)
        };
        let info = &d.pcs[pc as usize];
        let select_expand = self.rob_slots_needed(d, slot) == 2;
        let guard = self.guard_dep(d, slot, &oracles);
        let wants_old_dest =
            (info.insn.guard.is_some() || hw_guard.is_some()) && !oracles.no_pred_dependencies;

        let known_false = matches!(guard, GuardPlan::Known(false));
        let update_maps = |sim: &mut Self, id: u64| {
            if known_false {
                return;
            }
            if let Some(dg) = info.def_gpr {
                sim.gpr_prod[dg.index()] = Some(id);
            }
            for p in info.def_preds.into_iter().flatten() {
                if !p.is_hardwired_true() {
                    sim.pred_prod[p.index()] = Some(id);
                }
            }
        };

        if select_expand {
            // Compute part: sources only, no guard, no old destination.
            self.dep_scratch.clear();
            self.push_src_deps(info, &oracles);
            let compute_id = self.push_rob(d, slot, Role::Compute);
            // Select part: compute result + guard + old destination.
            self.dep_scratch.clear();
            self.dep_scratch.push(compute_id);
            match guard {
                GuardPlan::Wait(id) => self.dep_scratch.push(id),
                GuardPlan::None | GuardPlan::Ready | GuardPlan::Known(_) => {}
            }
            if wants_old_dest {
                self.push_old_dest_deps(info);
            }
            let select_id = self.push_rob(d, slot, Role::Select);
            update_maps(self, select_id);
            return;
        }

        // C-style single µop (or a non-expandable guarded store/branch).
        self.dep_scratch.clear();
        if let Some((p, _)) = hw_guard {
            if !oracles.no_pred_dependencies {
                if let Some(id) = self.pred_prod[p.index()] {
                    self.dep_scratch.push(id);
                }
            }
        }
        match guard {
            GuardPlan::Wait(id) => {
                self.dep_scratch.push(id);
                self.push_src_deps(info, &oracles);
                if wants_old_dest {
                    self.push_old_dest_deps(info);
                }
            }
            GuardPlan::Known(true) => self.push_src_deps(info, &oracles),
            GuardPlan::Known(false) => {
                if wants_old_dest {
                    self.push_old_dest_deps(info);
                }
            }
            GuardPlan::None | GuardPlan::Ready => {
                self.push_src_deps(info, &oracles);
                if wants_old_dest {
                    self.push_old_dest_deps(info);
                }
            }
        }
        let id = self.push_rob(d, slot, Role::Whole);
        update_maps(self, id);
    }

    fn pred_elim_active(&self) -> bool {
        matches!(self.mode, Mode::HighConf) && self.pred_elim_live > 0
    }

    fn pred_elim_insert(&mut self, index: usize, value: bool) {
        if self.pred_elim[index].is_none() {
            self.pred_elim_live += 1;
        }
        self.pred_elim[index] = Some(value);
    }

    // -------------------------------------------------------------- fetch

    fn fetch(&mut self, d: &DecodedProgram) {
        if self.fetch_blocked || self.cycle < self.fetch_stall_until {
            return;
        }
        let queue_cap = self.fetch_queue_cap;
        let mut budget = self.cfg.fetch_width;
        let mut cond_budget = self.cfg.max_cond_branches_per_cycle;
        while budget > 0 && self.fe_queue.len() < queue_cap {
            // Mode exit on reaching the low-confidence region's join target.
            if let Mode::LowConf {
                exit_target: Some(t),
                ..
            } = self.mode
            {
                if self.fetch_pc == t {
                    self.mode = Mode::Normal;
                }
            }
            let Some(info) = d.pcs.get(self.fetch_pc as usize) else {
                // Wrong-path fetch escaped the image; wait for the flush.
                self.fetch_blocked = true;
                return;
            };
            // I-cache.
            if !fetch_line_gate(
                &mut self.mem,
                &mut self.fetch_line,
                &mut self.fetch_stall_until,
                &mut self.fetch_stall_reason,
                self.cfg.mem.icache.latency,
                self.fetch_pc,
                info.line,
                self.cycle,
            ) {
                return;
            }

            let pc = self.fetch_pc;
            // Dynamic hammock predication: advance the guard-injection
            // state machine before fetching this µop.
            match self.dhp {
                DhpState::GuardFall {
                    pred,
                    negated,
                    cond,
                    until,
                    then,
                } => {
                    if pc >= until {
                        match then {
                            Some((taken_start, taken_until, skip_to)) => {
                                self.fetch_pc = taken_start;
                                self.dhp = DhpState::GuardTaken {
                                    pred,
                                    negated: !negated,
                                    cond,
                                    until: taken_until,
                                    skip_to,
                                };
                                continue;
                            }
                            None => self.dhp = DhpState::Off,
                        }
                    }
                }
                DhpState::GuardTaken { until, skip_to, .. } => {
                    if pc >= until {
                        self.dhp = DhpState::Off;
                        if let Some(j) = skip_to {
                            self.fetch_pc = j;
                            continue;
                        }
                    }
                }
                DhpState::Off => {}
            }
            if info.is_cond_branch {
                if cond_budget == 0 {
                    return; // next cycle
                }
                cond_budget -= 1;
            }
            let slot = self.fetch_one(d, pc);
            budget -= 1;
            let (followed_next, guard_true) = {
                let s = &self.slots[slot as usize];
                (s.info.followed_next, s.info.guard_true)
            };
            let taken_redirect = followed_next != pc + 1;
            self.fetch_pc = followed_next;

            // NO-FETCH oracle: guard-false µops vanish before taking any
            // bandwidth (they also don't count against the fetch budget).
            let skip = self.cfg.oracles.no_false_predicate_fetch
                && !guard_true
                && info.insn.guard.is_some()
                && !info.is_branch;
            if skip {
                budget += 1;
                self.stats.fetched_uops += 1;
                self.free_slot(slot);
                continue;
            }
            self.stats.fetched_uops += 1;
            self.fe_queue.push_back(slot);

            if info.is_halt {
                self.fetch_blocked = true;
                return;
            }
            if taken_redirect {
                // Fetch ends at the first taken branch (Table 2).
                return;
            }
        }
    }

    /// Processes one µop at fetch: predictions, wish-branch mode logic,
    /// speculative emulation, front-end table updates. Returns the arena
    /// slot the µop was written into.
    fn fetch_one(&mut self, d: &DecodedProgram, pc: u32) -> u32 {
        let seq = self.next_seq;
        self.next_seq += 1;
        let pi = &d.pcs[pc as usize];

        // Predicate-dependency elimination lookup (before this µop's own
        // writes invalidate entries).
        let guard_pred_elim = match pi.insn.guard {
            Some(g) if self.pred_elim_active() && !pi.is_branch => self.pred_elim[g.index()],
            _ => None,
        };

        let mut br_meta: Option<BrMeta> = None;
        let mut forced_next: Option<u32> = None;

        if let InsnKind::Branch { kind, target } = pi.insn.kind {
            let ghr_checkpoint = self.bp.ghr();
            let fetch_mode = self.mode;
            let mut meta = BrMeta {
                predicted_taken: false,
                predicted_next: pc + 1,
                bp_token: None,
                predictor_said_taken: false,
                ghr_checkpoint,
                conf_ghr: ghr_checkpoint,
                ras_checkpoint: self.ras.checkpoint(),
                conf_high: None,
                fetch_mode,
                loop_token: None,
                dhp: false,
            };
            match kind {
                BranchKind::Cond { .. } => {
                    let (dir, token) = self.predict_cond(d, pc, &pi.insn, &mut meta);
                    meta.predicted_taken = dir;
                    meta.bp_token = token;
                    meta.predicted_next = if dir { target } else { pc + 1 };
                    self.bp.on_fetch_branch(dir);
                    self.btb_note(pc, BtbKind::Cond, target, pi.insn.wish, dir);
                }
                BranchKind::Uncond => {
                    meta.predicted_taken = true;
                    meta.predicted_next = target;
                    self.btb_note(pc, BtbKind::Uncond, target, None, true);
                }
                BranchKind::Call => {
                    meta.predicted_taken = true;
                    meta.predicted_next = target;
                    self.ras.push(pc + 1);
                    meta.ras_checkpoint = self.ras.checkpoint();
                    self.btb_note(pc, BtbKind::Call, target, None, true);
                }
                BranchKind::Ret => {
                    let predicted = self
                        .ras
                        .pop()
                        .or_else(|| self.itc.predict(pc, self.bp.ghr()))
                        .unwrap_or(0);
                    meta.predicted_taken = true;
                    meta.predicted_next = predicted;
                    meta.ras_checkpoint = self.ras.checkpoint();
                    self.btb_note(pc, BtbKind::Ret, predicted, None, true);
                }
                BranchKind::Indirect { .. } => {
                    let predicted = self.itc.predict(pc, self.bp.ghr()).unwrap_or(pc + 1);
                    meta.predicted_taken = true;
                    meta.predicted_next = predicted;
                    self.btb_note(pc, BtbKind::Indirect, predicted, None, true);
                }
            }
            if self.cfg.oracles.perfect_branch_prediction {
                // PERFECT-CBP: override everything with the oracle.
                let actual = self.emu.peek_cond(&pi.insn);
                match kind {
                    BranchKind::Cond { .. } => {
                        let t = actual.expect("cond branch peeks");
                        meta.predicted_taken = t;
                        meta.predicted_next = if t { target } else { pc + 1 };
                        meta.bp_token = None;
                        meta.conf_high = None;
                    }
                    _ => {
                        meta.predicted_next = self.peek_target(&pi.insn, pc);
                    }
                }
            }
            forced_next = Some(meta.predicted_next);
            br_meta = Some(meta);
        }

        // DHP: non-control µops inside an active region carry the injected
        // guard.
        let (hw_guard, hw_guard_ok) = if pi.is_branch {
            (None, None)
        } else {
            match self.dhp {
                DhpState::GuardFall {
                    pred,
                    negated,
                    cond,
                    ..
                }
                | DhpState::GuardTaken {
                    pred,
                    negated,
                    cond,
                    ..
                } => (Some((pred, negated)), Some(cond ^ negated)),
                DhpState::Off => (None, None),
            }
        };
        // Predicate prediction (Chuang & Calder baseline).
        let mut pred_check = None;
        if self.cfg.predicate_prediction && pi.defines_pred && br_meta.is_none() {
            let counter = self.pred_value_pht[pc as usize];
            pred_check = Some(counter >= 2);
            br_meta = Some(BrMeta {
                predicted_taken: false,
                predicted_next: pc + 1,
                bp_token: None,
                predictor_said_taken: false,
                ghr_checkpoint: self.bp.ghr(),
                conf_ghr: self.conf_history,
                ras_checkpoint: self.ras.checkpoint(),
                conf_high: None,
                fetch_mode: self.mode,
                loop_token: None,
                dhp: false,
            });
        }

        let info = self.emu.exec(seq, pc, &pi.insn, forced_next, hw_guard_ok);

        // Front-end table maintenance after the µop is "decoded".
        self.note_pred_writes(d, pc);

        // Branch metadata lives in a side arena: most µops are not
        // branches, and `BrMeta` embeds a 272-byte RAS checkpoint that
        // would otherwise be copied into every slot.
        let br_ref = match br_meta {
            Some(m) => self.alloc_br(m),
            None => NO_BR,
        };
        let uop = UopSlot {
            seq,
            pc,
            fetch_cycle: self.cycle,
            info,
            br: br_ref,
            guard_pred_elim,
            hw_guard,
            pred_check,
        };
        match self.free.pop() {
            Some(i) => {
                self.slots[i as usize] = uop;
                i
            }
            None => {
                self.slots.push(uop);
                (self.slots.len() - 1) as u32
            }
        }
    }

    /// Oracle target of a control µop (for PERFECT-CBP on ret/indirect).
    fn peek_target(&self, insn: &Insn, pc: u32) -> u32 {
        match insn.kind {
            InsnKind::Branch { kind, target } => match kind {
                BranchKind::Ret => self.emu.regs[Gpr::LINK.index()] as u32,
                BranchKind::Indirect { target: r } => self.emu.regs[r.index()] as u32,
                _ => target,
            },
            _ => pc + 1,
        }
    }

    /// Direction prediction for a conditional branch, including all wish
    /// branch mode logic (§3.1, §3.2, Table 1, Fig. 8).
    fn predict_cond(
        &mut self,
        d: &DecodedProgram,
        pc: u32,
        insn: &Insn,
        meta: &mut BrMeta,
    ) -> (bool, Option<HybridToken>) {
        let (mut bp_dir, token) = self.bp.predict(pc);
        meta.predictor_said_taken = bp_dir;
        meta.conf_ghr = self.conf_history;
        let wish = insn.wish.filter(|_| self.cfg.wish_enabled);
        let Some(wtype) = wish else {
            // Dynamic hammock predication for plain conditional branches.
            if self.cfg.dhp_enabled && self.dhp == DhpState::Off {
                if let Some(plan) = self.dhp_region(d, pc) {
                    let low = if self.cfg.oracles.perfect_confidence {
                        let actual = self.emu.peek_cond(insn).expect("cond branch");
                        bp_dir != actual
                    } else {
                        !self.jrs.estimate(pc, self.conf_history).is_high()
                    };
                    meta.conf_high = Some(!low);
                    if low {
                        meta.dhp = true;
                        self.dhp = plan;
                        self.stats.dhp_predications += 1;
                        return (false, Some(token));
                    }
                }
            }
            return (bp_dir, Some(token));
        };
        // Specialized wish-loop predictor (§3.2 extension).
        if wtype == WishType::Loop {
            if let Some(lp) = self.loop_pred.as_mut() {
                let (pred, ltok) = lp.fetch_predict(pc);
                meta.loop_token = Some(ltok);
                if let Some(dir) = pred {
                    bp_dir = dir;
                    meta.predictor_said_taken = dir;
                }
            }
        }

        let mut final_dir = bp_dir;

        match self.mode {
            Mode::LowConf {
                exit_target,
                loop_pc,
            } => {
                match wtype {
                    WishType::Jump | WishType::Join => {
                        final_dir = false;
                        meta.conf_high = Some(false);
                        if exit_target.is_none() {
                            if let Some(t) = insn.direct_target() {
                                self.mode = Mode::LowConf {
                                    exit_target: Some(t),
                                    loop_pc,
                                };
                            }
                        }
                    }
                    WishType::Loop => {
                        meta.conf_high = Some(false);
                    }
                }
                meta.fetch_mode = Mode::LowConf {
                    exit_target,
                    loop_pc,
                };
            }
            Mode::Normal | Mode::HighConf => {
                let high = if self.cfg.oracles.perfect_confidence {
                    let actual = self.emu.peek_cond(insn).expect("cond branch");
                    bp_dir == actual
                } else {
                    self.jrs.estimate(pc, meta.conf_ghr).is_high()
                };
                meta.conf_high = Some(high);
                if high {
                    self.mode = Mode::HighConf;
                    self.install_pred_elim(insn, bp_dir);
                } else {
                    match wtype {
                        WishType::Jump | WishType::Join => {
                            final_dir = false;
                            self.mode = Mode::LowConf {
                                exit_target: insn.direct_target(),
                                loop_pc: None,
                            };
                        }
                        WishType::Loop => {
                            self.mode = Mode::LowConf {
                                exit_target: None,
                                loop_pc: Some(pc),
                            };
                        }
                    }
                }
                meta.fetch_mode = self.mode;
            }
        }
        if wtype == WishType::Loop {
            self.loop_last_pred[pc as usize] = Some((final_dir, self.next_seq - 1));
            if !final_dir {
                match self.mode {
                    Mode::HighConf => self.mode = Mode::Normal,
                    Mode::LowConf {
                        loop_pc: Some(lp), ..
                    } if lp == pc => self.mode = Mode::Normal,
                    _ => {}
                }
            }
        }
        (final_dir, Some(token))
    }

    fn install_pred_elim(&mut self, insn: &Insn, predicted_dir: bool) {
        let InsnKind::Branch {
            kind: BranchKind::Cond { pred, sense },
            ..
        } = insn.kind
        else {
            return;
        };
        let value = if sense { predicted_dir } else { !predicted_dir };
        self.pred_elim_insert(pred.index(), value);
        if let Some(partner) = self.cmp2_partner[pred.index()] {
            self.pred_elim_insert(partner as usize, !value);
        }
    }

    fn note_pred_writes(&mut self, d: &DecodedProgram, pc: u32) {
        let info = &d.pcs[pc as usize];
        let def_preds = info.def_preds;
        let is_cmp2 = info.is_cmp2;
        if is_cmp2 {
            let t = def_preds[0].expect("cmp2 defines two predicates").index();
            let f = def_preds[1].expect("cmp2 defines two predicates").index();
            self.cmp2_partner[t] = Some(f as u8);
            self.cmp2_partner[f] = Some(t as u8);
        }
        for p in def_preds.into_iter().flatten() {
            if self.pred_elim[p.index()].take().is_some() {
                self.pred_elim_live -= 1;
            }
            if !is_cmp2 {
                self.cmp2_partner[p.index()] = None;
            }
        }
        if matches!(self.mode, Mode::HighConf) && self.pred_elim_live == 0 {
            self.mode = Mode::Normal;
        }
    }

    fn dhp_region(&self, d: &DecodedProgram, pc: u32) -> Option<DhpState> {
        let plan = d.dhp_plans[pc as usize]?;
        Some(DhpState::GuardFall {
            pred: plan.pred,
            negated: plan.negated,
            cond: self.emu.preds[plan.pred.index()],
            until: plan.until,
            then: plan.then,
        })
    }

    fn btb_note(
        &mut self,
        pc: u32,
        kind: BtbKind,
        target: u32,
        wish: Option<WishType>,
        redirects: bool,
    ) {
        let hit = self.btb.lookup(pc).is_some();
        if !hit {
            self.btb.install(pc, BtbEntry { target, kind, wish });
            if redirects {
                self.fetch_stall_until = self.cycle + self.cfg.btb_miss_penalty;
                self.fetch_stall_reason = StallReason::Redirect;
            }
        }
    }
}

/// Advances N independent simulation lanes in lockstep rounds over a
/// shared pre-decoded µop cache. Lanes are grouped by
/// `(program identity, decode key)` for decode sharing; everything dynamic
/// is per-lane, so every lane's [`SimResult`] is bit-identical to a scalar
/// [`crate::Simulator`] run.
///
/// # Example
///
/// ```
/// use wishbranch_isa::{AluOp, Gpr, Insn, Operand, Program};
/// use wishbranch_uarch::{BatchLaneSpec, BatchSimulator, MachineConfig};
///
/// let prog = Program::from_insns(vec![
///     Insn::mov_imm(Gpr::new(1), 2),
///     Insn::alu(AluOp::Add, Gpr::new(1), Gpr::new(1), Operand::imm(3)),
///     Insn::halt(),
/// ]);
/// let specs: Vec<BatchLaneSpec> = (0..4)
///     .map(|_| BatchLaneSpec {
///         program: &prog,
///         cfg: MachineConfig::default(),
///         preload_mem: Vec::new(),
///         retire_log: false,
///     })
///     .collect();
/// let mut batch = BatchSimulator::new(&specs);
/// for r in batch.run() {
///     assert_eq!(r.expect("halts").final_regs[1], 5);
/// }
/// ```
pub struct BatchSimulator {
    lanes: Vec<Lane>,
}

/// Cycles each active lane advances per lockstep round. Lanes are
/// independent, so the round size is a locality knob (keep a lane's
/// working set hot for a while), never a correctness one.
const ROUND_CYCLES: u64 = 4096;

impl BatchSimulator {
    /// Builds one lane per spec, sharing pre-decoded program tables across
    /// lanes whose `(program, decode key)` match.
    #[must_use]
    pub fn new(specs: &[BatchLaneSpec<'_>]) -> BatchSimulator {
        let mut cache: Vec<(&Program, DecodeKey, Arc<DecodedProgram>)> = Vec::new();
        let mut lanes = Vec::with_capacity(specs.len());
        for spec in specs {
            let key = DecodeKey::of(&spec.cfg);
            let decoded = match cache
                .iter()
                .find(|(p, k, _)| std::ptr::eq(*p, spec.program) && *k == key)
            {
                Some((_, _, a)) => Arc::clone(a),
                None => {
                    let a = Arc::new(DecodedProgram::build(spec.program, &spec.cfg));
                    cache.push((spec.program, key, Arc::clone(&a)));
                    a
                }
            };
            lanes.push(Lane::new(spec, decoded));
        }
        BatchSimulator { lanes }
    }

    /// Number of lanes.
    #[must_use]
    pub fn lanes(&self) -> usize {
        self.lanes.len()
    }

    /// Runs every lane to completion, rotating through the active set in
    /// lockstep rounds; finished lanes leave the set so a straggler never
    /// serializes the rest. Returns one result per lane, in spec order.
    pub fn run(&mut self) -> Vec<Result<SimResult, SimError>> {
        let n = self.lanes.len();
        let mut results: Vec<Option<Result<SimResult, SimError>>> =
            (0..n).map(|_| None).collect();
        let mut active: Vec<usize> = (0..n).collect();
        while !active.is_empty() {
            let mut still = Vec::with_capacity(active.len());
            for &i in &active {
                match self.lanes[i].advance(ROUND_CYCLES) {
                    LaneStatus::Running => still.push(i),
                    LaneStatus::Halted => results[i] = Some(Ok(self.lanes[i].finish())),
                    LaneStatus::Limit(e) => results[i] = Some(Err(e)),
                }
            }
            active = still;
        }
        results
            .into_iter()
            .map(|r| r.expect("every lane finished"))
            .collect()
    }

    /// Takes lane `lane`'s retired-instruction stream (empty unless the
    /// spec asked for it). One record per retired architectural µop in
    /// commit order, exactly like [`crate::Simulator::take_retire_log`].
    pub fn take_retire_log(&mut self, lane: usize) -> Vec<wishbranch_isa::RetireRecord> {
        self.lanes[lane].retire_log.take().unwrap_or_default()
    }
}

// The scalar engine's loop-exit classes are re-exported through stats; the
// slim ROB stores them as small codes. Keep the mapping in one place.
#[allow(dead_code)]
fn loop_class_of(code: u8) -> Option<LoopExitClass> {
    match code {
        LC_EARLY => Some(LoopExitClass::EarlyExit),
        LC_LATE => Some(LoopExitClass::LateExit),
        LC_NOEXIT => Some(LoopExitClass::NoExit),
        _ => None,
    }
}
