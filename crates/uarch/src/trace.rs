//! Optional pipeline event tracing (off by default): every fetch,
//! dispatch, issue, retirement, squash and flush as a typed event stream —
//! the debugging view ("pipeview") every out-of-order simulator needs.
//!
//! Tracing is strictly pay-for-use: every `trace_event` call site in the
//! core is pre-guarded by `trace.is_some()` (and the helper itself
//! debug-asserts it), so the non-tracing hot path performs no event
//! allocation or disassembly formatting whatsoever.

use std::fmt;

/// What happened to a µop (or the pipeline) at a given cycle.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum TraceKind {
    /// The µop was fetched (and executed by the speculative emulator).
    Fetch,
    /// The µop was renamed into the ROB.
    Dispatch,
    /// The µop was selected for execution; completes at the event's
    /// `extra` cycle.
    Issue,
    /// The µop retired.
    Retire,
    /// A pipeline flush was triggered by this µop; `extra` is the number
    /// of squashed µops.
    Flush,
}

/// One pipeline event.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Cycle the event happened.
    pub cycle: u64,
    /// Event type.
    pub kind: TraceKind,
    /// The µop's fetch sequence number.
    pub seq: u64,
    /// The µop's program counter.
    pub pc: u32,
    /// Disassembly of the µop.
    pub disasm: String,
    /// Event-specific extra datum (completion cycle for `Issue`, squash
    /// count for `Flush`, 0 otherwise).
    pub extra: u64,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let k = match self.kind {
            TraceKind::Fetch => "F",
            TraceKind::Dispatch => "D",
            TraceKind::Issue => "I",
            TraceKind::Retire => "R",
            TraceKind::Flush => "X",
        };
        write!(
            f,
            "{:>8} {k} seq={:<6} pc={:<5} {}",
            self.cycle, self.seq, self.pc, self.disasm
        )?;
        match self.kind {
            TraceKind::Issue => write!(f, "  (done @{})", self.extra),
            TraceKind::Flush => write!(f, "  (squashed {})", self.extra),
            _ => Ok(()),
        }
    }
}

/// Renders a trace as one line per event.
#[must_use]
pub fn render_trace(events: &[TraceEvent]) -> String {
    let mut out = String::new();
    for e in events {
        out.push_str(&e.to_string());
        out.push('\n');
    }
    out
}
