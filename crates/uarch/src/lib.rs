//! # wishbranch-uarch
//!
//! The cycle-level out-of-order superscalar core of Table 2, with full
//! predication support and the wish-branch hardware of §3.5:
//!
//! * 8-wide fetch that follows the branch predictors, stops at the first
//!   predicted-taken branch, and fetches at most three conditional branches
//!   per cycle;
//! * a configurable-depth front end (default 30 stages ⇒ ≥30-cycle
//!   misprediction penalty), 512-entry ROB, 8-wide issue/retire;
//! * C-style conditional-expression predication (§2.1) or the select-µop
//!   mechanism (§5.3.3), selected by [`PredMechanism`];
//! * the wish-branch front-end mode FSM (Fig. 8), the predicate-dependency
//!   elimination buffer (§3.5.3), and the wish-loop early/late/no-exit
//!   recovery logic (§3.5.4);
//! * oracle knobs ([`OracleConfig`]) for the paper's NO-DEPEND,
//!   NO-DEPEND+NO-FETCH and PERFECT-CBP experiments (Fig. 2) and for the
//!   perfect confidence estimator (Figs. 10/12);
//! * two studied extensions: *dynamic hammock predication* (the §6.1
//!   hardware-only alternative, [`MachineConfig::dhp_enabled`]) and the
//!   §3.2 specialized biasable wish-loop predictor
//!   ([`MachineConfig::wish_loop_predictor`]).
//!
//! ## Methodology: speculative front-end emulator
//!
//! The simulator is execution-driven. A *speculative emulator* holds the
//! architectural state along the fetched path: every fetched µop (correct
//! path or wrong path) is functionally executed at fetch time with an undo
//! log, so wrong-path instructions have real values, real load addresses,
//! and real branch outcomes. Fetch direction comes from the predictors —
//! the emulator is *forced* to follow fetch — and a pipeline flush unwinds
//! the undo log back to the mispredicted branch. This is strictly stronger
//! than the paper's Pin-based wrong-path traces. At `halt`, the retired
//! state must equal [`wishbranch_isa::exec::Machine`]'s — the test suite
//! enforces it for every binary variant.
//!
//! # Example
//!
//! ```
//! use wishbranch_uarch::{MachineConfig, Simulator};
//! use wishbranch_isa::{Insn, Program, Gpr, Operand, AluOp};
//!
//! let prog = Program::from_insns(vec![
//!     Insn::mov_imm(Gpr::new(1), 2),
//!     Insn::alu(AluOp::Add, Gpr::new(1), Gpr::new(1), Operand::imm(3)),
//!     Insn::halt(),
//! ]);
//! let mut sim = Simulator::new(&prog, MachineConfig::default());
//! let res = sim.run().expect("halts");
//! assert_eq!(res.final_regs[1], 5);
//! assert!(res.stats.cycles > 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
mod config;
mod core;
mod decode;
mod emu;
mod stats;
pub mod trace;

pub use batch::{BatchLaneSpec, BatchSimulator};
pub use config::{MachineConfig, OracleConfig, PredMechanism};
pub use core::{SimError, SimResult, SimScratch, Simulator};
pub use stats::{CycleAccounting, HotSiteCounts, LoopExitClass, SimStats, WishClassCounts};
pub use trace::{render_trace, TraceEvent, TraceKind};
