//! Pre-decoded per-PC program tables, shared between the scalar
//! [`crate::Simulator`] and the batched [`crate::BatchSimulator`].
//!
//! Everything in a [`DecodedProgram`] is a pure function of the program
//! text and the *decode-relevant* slice of the machine configuration
//! (I-cache line size and the DHP knobs). The scalar simulator builds and
//! owns one per run; the batch simulator builds one per distinct
//! `(program, decode key)` pair and shares it read-only across all lanes
//! of a batch — the "one shared pre-decoded µop cache" of the batched
//! execution mode.

use wishbranch_isa::{insn_addr, AluOp, BranchKind, Gpr, Insn, InsnKind, PredReg, Program, WishType};

use crate::config::MachineConfig;

/// Execution-latency classes, pre-decoded per PC so the issue stage can
/// resolve a µop's latency from a per-lane table without re-matching the
/// instruction kind. Everything not named here is single-cycle.
pub(crate) const EC_UNIT: u8 = 0;
pub(crate) const EC_MUL: u8 = 1;
pub(crate) const EC_DIV: u8 = 2;
pub(crate) const EC_LOAD: u8 = 3;
pub(crate) const EC_STORE: u8 = 4;

/// Static per-PC information, pre-decoded once per program — the decoded
/// µop cache.
#[derive(Clone, Copy, Debug)]
pub(crate) struct PcInfo {
    pub(crate) insn: Insn,
    /// I-cache line of this pc's instruction address.
    pub(crate) line: u64,
    pub(crate) is_branch: bool,
    pub(crate) is_cond_branch: bool,
    pub(crate) is_halt: bool,
    pub(crate) is_cmp2: bool,
    pub(crate) is_store: bool,
    /// This µop defines at least one predicate register
    /// (predicate-prediction eligibility).
    pub(crate) defines_pred: bool,
    pub(crate) def_gpr: Option<Gpr>,
    pub(crate) def_preds: [Option<PredReg>; 2],
    pub(crate) gpr_srcs: [Option<Gpr>; 2],
    pub(crate) pred_srcs: [Option<PredReg>; 2],
    /// Static part of the select-µop expansion test: a guarded non-branch
    /// µop with a destination.
    pub(crate) select_expandable: bool,
    /// Execution-latency class (`EC_*`).
    pub(crate) exec_class: u8,
}

/// The static part of a DHP guard-injection plan for a conditional branch
/// (everything in the dynamic guard state except the captured condition
/// value, which is architectural and read at fetch).
#[derive(Clone, Copy, Debug)]
pub(crate) struct DhpPlan {
    pub(crate) pred: PredReg,
    pub(crate) negated: bool,
    pub(crate) until: u32,
    pub(crate) then: Option<(u32, u32, Option<u32>)>,
}

/// The decode-relevant slice of a [`MachineConfig`]: two lanes whose
/// configurations agree on these fields can share one [`DecodedProgram`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct DecodeKey {
    pub(crate) line_bytes: u64,
    pub(crate) dhp_enabled: bool,
    pub(crate) dhp_max_block: u32,
}

impl DecodeKey {
    pub(crate) fn of(cfg: &MachineConfig) -> DecodeKey {
        DecodeKey {
            line_bytes: cfg.mem.icache.line_bytes as u64,
            dhp_enabled: cfg.dhp_enabled,
            dhp_max_block: cfg.dhp_max_block,
        }
    }
}

/// A program pre-decoded against one [`DecodeKey`]: per-PC static facts,
/// static DHP hammock plans, and the wish-loop PC set.
#[derive(Clone, Debug, Default)]
pub(crate) struct DecodedProgram {
    /// Pre-decoded static info per pc (same length as the program).
    pub(crate) pcs: Vec<PcInfo>,
    /// Static DHP hammock plans per pc (all `None` unless `dhp_enabled`).
    pub(crate) dhp_plans: Vec<Option<DhpPlan>>,
    /// The pcs of wish-loop branches (the only populated slots of the
    /// per-PC last-prediction buffer — drives the flush-time purge).
    pub(crate) wish_loop_pcs: Vec<u32>,
    /// Program entry point.
    pub(crate) entry: u32,
}

impl DecodedProgram {
    /// Decodes `program` under `cfg`'s [`DecodeKey`].
    pub(crate) fn build(program: &Program, cfg: &MachineConfig) -> DecodedProgram {
        let mut d = DecodedProgram::default();
        d.rebuild(program, cfg);
        d
    }

    /// Refills `self` from `program`, reusing the existing table
    /// allocations (the `SimScratch` recycling path).
    pub(crate) fn rebuild(&mut self, program: &Program, cfg: &MachineConfig) {
        let key = DecodeKey::of(cfg);
        let n = program.len();
        self.pcs.clear();
        self.pcs.reserve(n);
        self.dhp_plans.clear();
        self.dhp_plans.resize(n, None);
        self.wish_loop_pcs.clear();
        self.entry = program.entry();
        for pc in 0..n as u32 {
            let insn = *program.get(pc).expect("pc < program.len()");
            let def_preds = insn.def_preds();
            let is_branch = insn.is_branch();
            let info = PcInfo {
                insn,
                line: insn_addr(pc) / key.line_bytes,
                is_branch,
                is_cond_branch: insn.is_conditional_branch(),
                is_halt: matches!(insn.kind, InsnKind::Halt),
                is_cmp2: matches!(insn.kind, InsnKind::Cmp2 { .. }),
                is_store: matches!(insn.kind, InsnKind::Store { .. }),
                defines_pred: def_preds[0].is_some(),
                def_gpr: insn.def_gpr(),
                def_preds,
                gpr_srcs: insn.gpr_srcs(),
                pred_srcs: insn.pred_srcs(),
                select_expandable: insn.guard.is_some()
                    && !is_branch
                    && (insn.def_gpr().is_some() || def_preds[0].is_some()),
                exec_class: match insn.kind {
                    InsnKind::Alu { op: AluOp::Mul, .. } => EC_MUL,
                    InsnKind::Alu { op: AluOp::Div, .. } => EC_DIV,
                    InsnKind::Load { .. } => EC_LOAD,
                    InsnKind::Store { .. } => EC_STORE,
                    _ => EC_UNIT,
                },
            };
            if info.is_cond_branch && insn.wish == Some(WishType::Loop) {
                self.wish_loop_pcs.push(pc);
            }
            if key.dhp_enabled && info.is_cond_branch {
                self.dhp_plans[pc as usize] =
                    dhp_plan_static(program, key.dhp_max_block, pc, &insn);
            }
            self.pcs.push(info);
        }
    }

    /// Program length (number of decoded PCs).
    pub(crate) fn len(&self) -> usize {
        self.pcs.len()
    }
}

/// Checks whether the branch at `pc` guards a DHP-eligible hammock and
/// returns the static guard-injection plan. Eligibility: forward branch,
/// arms within `max` µops, arms free of control flow (hardware cannot
/// re-converge across nested branches). Three layouts are recognized,
/// matching what compilers actually emit:
///
/// 1. skip-triangle — `br → J; B…; J:` (guard B);
/// 2. contiguous diamond — `br → T; B…; jmp J; T: C…; J:`;
/// 3. far-taken diamond — `br → T; B…; J: …  T: C…; jmp J` (the taken
///    arm laid out out-of-line, jumping back to the join).
pub(crate) fn dhp_plan_static(program: &Program, max: u32, pc: u32, insn: &Insn) -> Option<DhpPlan> {
    let InsnKind::Branch {
        kind: BranchKind::Cond { pred, sense },
        target,
    } = insn.kind
    else {
        return None;
    };
    let straight = |lo: u32, hi: u32| {
        lo <= hi
            && hi - lo <= max
            && (lo..hi).all(|i| {
                program
                    .get(i)
                    .is_some_and(|x| !x.is_branch() && !matches!(x.kind, InsnKind::Halt))
            })
    };
    if target <= pc + 1 {
        return None;
    }
    // The fall-through arm executes when the branch is NOT taken:
    // guard value = !(pred == sense)  ⇒  (pred, negated = sense).
    // Layout 2: contiguous diamond (trailing jump inside the region).
    if target >= 2 && target - (pc + 1) >= 2 {
        if let Some(last) = program.get(target - 1) {
            if let InsnKind::Branch {
                kind: BranchKind::Uncond,
                target: join,
            } = last.kind
            {
                if join > target && straight(pc + 1, target - 1) && straight(target, join) {
                    return Some(DhpPlan {
                        pred,
                        negated: sense,
                        until: target - 1,
                        then: Some((target, join, None)),
                    });
                }
            }
        }
    }
    // Layout 3: far-taken diamond. Scan the taken arm for its trailing
    // jump back into the fall-through region.
    let mut k = target;
    while k - target <= max {
        let Some(x) = program.get(k) else { break };
        if let InsnKind::Branch { kind, target: join } = x.kind {
            if matches!(kind, BranchKind::Uncond)
                && join > pc
                && join <= target
                && straight(pc + 1, join)
                && straight(target, k)
            {
                return Some(DhpPlan {
                    pred,
                    negated: sense,
                    until: join,
                    then: Some((target, k, Some(join))),
                });
            }
            break;
        }
        if matches!(x.kind, InsnKind::Halt) {
            break;
        }
        k += 1;
    }
    // Layout 1: skip-triangle.
    if straight(pc + 1, target) {
        return Some(DhpPlan {
            pred,
            negated: sense,
            until: target,
            then: None,
        });
    }
    None
}
