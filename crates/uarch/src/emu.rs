//! The speculative front-end emulator: architectural state along the
//! *fetched* path, with an undo log for pipeline flushes.

use std::collections::{HashMap, VecDeque};
use wishbranch_isa::{BranchKind, Gpr, Insn, InsnKind, PredReg, NUM_GPRS, NUM_PREDS};

/// What one fetched µop did, as seen by the emulator.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) struct StepInfo {
    /// Value the qualifying predicate read (TRUE for unguarded µops).
    pub guard_true: bool,
    /// For conditional branches: the architecturally correct direction
    /// (predicate-implied). Meaningless otherwise.
    pub actual_taken: bool,
    /// For control µops: the architecturally correct next pc.
    pub actual_next: u32,
    /// The pc the emulator actually followed (fetch's choice).
    pub followed_next: u32,
    /// Data address touched, if this is a load/store with a TRUE guard.
    pub mem_addr: Option<u64>,
    /// Whether this is a store whose guard was TRUE (will commit).
    pub is_store: bool,
    /// The µop halts the program.
    pub halted: bool,
    /// Values written to predicate registers (for `cmp2`, `[t, f]`).
    pub pred_values: [Option<bool>; 2],
    /// GPR written (index, value) with a TRUE guard — ALU/mov/load results
    /// and a call's link-register write. Feeds the retirement oracle.
    pub reg_write: Option<(u8, i64)>,
    /// Value stored by a TRUE-guard store (address is in `mem_addr`).
    pub store_value: Option<i64>,
}

// µops that touch no architectural state (branches, nops, guard-false
// µops) log nothing at all: `rollback_after` and `commit_through` are
// keyed purely on sequence numbers, never on record positions, so gaps
// in the log are harmless and the common no-write case stays free.
#[derive(Clone, Copy, Debug)]
enum Undo {
    Reg(u8, i64),
    Pred(u8, bool),
    Mem(u64, Option<i64>),
}

/// Log of a data-memory word: 2^PAGE_BITS words per page.
const PAGE_BITS: u32 = 8;
const PAGE_WORDS: usize = 1 << PAGE_BITS;
const PRESENT_WORDS: usize = PAGE_WORDS / 64;

/// One page of speculative data memory. `present` tracks which words have
/// ever been stored to (and not rolled back): a word that is absent reads
/// as 0 for loads, but is *omitted* from the final-state dump, exactly
/// like the `HashMap` this store replaced. Absent words are kept zeroed so
/// the load path never has to consult the bitmap.
#[derive(Clone, Debug)]
struct Page {
    number: u64,
    present: [u64; PRESENT_WORDS],
    words: [i64; PAGE_WORDS],
}

/// Paged flat store for speculative data memory. Loads and stores resolve
/// to a direct array access after a one-entry last-page cache (hit for the
/// overwhelmingly common same-page access streams) or a page-table lookup.
#[derive(Clone, Debug, Default)]
pub(crate) struct PagedMem {
    pages: Vec<Box<Page>>,
    /// Page number → slot in `pages`.
    index: HashMap<u64, u32>,
    /// Last page touched: (page number, slot).
    last: Option<(u64, u32)>,
}

impl PagedMem {
    fn slot(&mut self, page_no: u64) -> Option<u32> {
        if let Some((n, s)) = self.last {
            if n == page_no {
                return Some(s);
            }
        }
        let s = *self.index.get(&page_no)?;
        self.last = Some((page_no, s));
        Some(s)
    }

    fn slot_or_create(&mut self, page_no: u64) -> u32 {
        if let Some(s) = self.slot(page_no) {
            return s;
        }
        let s = u32::try_from(self.pages.len()).expect("page count fits u32");
        self.pages.push(Box::new(Page {
            number: page_no,
            present: [0; PRESENT_WORDS],
            words: [0; PAGE_WORDS],
        }));
        self.index.insert(page_no, s);
        self.last = Some((page_no, s));
        s
    }

    /// Value at `addr`, defaulting to 0 when never stored (the pre-paging
    /// behavior of `HashMap::get(..).unwrap_or(0)`).
    pub(crate) fn load(&mut self, addr: u64) -> i64 {
        match self.slot(addr >> PAGE_BITS) {
            Some(s) => self.pages[s as usize].words[addr as usize & (PAGE_WORDS - 1)],
            None => 0,
        }
    }

    /// Value at `addr` if a store to it is live, else `None`.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn get(&self, addr: u64) -> Option<i64> {
        let s = *self.index.get(&(addr >> PAGE_BITS))?;
        let p = &self.pages[s as usize];
        let o = addr as usize & (PAGE_WORDS - 1);
        (p.present[o / 64] & (1 << (o % 64)) != 0).then(|| p.words[o])
    }

    /// Stores `v` at `addr`, returning the previous live value (the undo
    /// record) — `None` when the word was absent.
    pub(crate) fn insert(&mut self, addr: u64, v: i64) -> Option<i64> {
        let s = self.slot_or_create(addr >> PAGE_BITS) as usize;
        let p = &mut self.pages[s];
        let o = addr as usize & (PAGE_WORDS - 1);
        let bit = 1u64 << (o % 64);
        let old = (p.present[o / 64] & bit != 0).then(|| p.words[o]);
        p.present[o / 64] |= bit;
        p.words[o] = v;
        old
    }

    /// Marks `addr` absent again (rollback of a first-touch store). The
    /// word is re-zeroed so loads keep reading 0 without a bitmap check.
    /// A page whose last live word is removed is reclaimed — without this,
    /// long fuzz runs that roll back first-touch stores to ever-new pages
    /// grow the page table monotonically.
    pub(crate) fn remove(&mut self, addr: u64) {
        let page_no = addr >> PAGE_BITS;
        if let Some(s) = self.slot(page_no) {
            let p = &mut self.pages[s as usize];
            let o = addr as usize & (PAGE_WORDS - 1);
            p.present[o / 64] &= !(1u64 << (o % 64));
            p.words[o] = 0;
            if p.present.iter().all(|&m| m == 0) {
                self.pages.swap_remove(s as usize);
                self.index.remove(&page_no);
                if let Some(moved) = self.pages.get(s as usize) {
                    self.index.insert(moved.number, s);
                }
                // The cache may point at the dead page or the moved one.
                self.last = None;
            }
        }
    }

    /// Number of live pages in the table.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Every live (address, value) pair in ascending address order.
    pub(crate) fn sorted_entries(&self) -> Vec<(u64, i64)> {
        let mut pages: Vec<&Page> = self.pages.iter().map(|b| &**b).collect();
        pages.sort_unstable_by_key(|p| p.number);
        let mut out = Vec::new();
        for p in pages {
            for (w, &mask) in p.present.iter().enumerate() {
                let mut bits = mask;
                while bits != 0 {
                    let o = w * 64 + bits.trailing_zeros() as usize;
                    out.push(((p.number << PAGE_BITS) | o as u64, p.words[o]));
                    bits &= bits - 1;
                }
            }
        }
        out
    }
}

/// Architectural state along the fetched path. Every fetched µop is
/// executed here at fetch time; a flush unwinds to the offending branch.
#[derive(Clone, Debug)]
pub(crate) struct SpecEmulator {
    pub regs: [i64; NUM_GPRS],
    pub preds: [bool; NUM_PREDS],
    pub mem: PagedMem,
    /// (sequence number, undo record) per executed µop, in order. A deque:
    /// retire drains from the front (`commit_through`), flushes unwind from
    /// the back (`rollback_after`) — both ends stay O(1) per record.
    log: VecDeque<(u64, Undo)>,
}

impl SpecEmulator {
    pub(crate) fn new() -> SpecEmulator {
        let mut preds = [false; NUM_PREDS];
        preds[0] = true;
        SpecEmulator {
            regs: [0; NUM_GPRS],
            preds,
            mem: PagedMem::default(),
            log: VecDeque::new(),
        }
    }

    fn reg(&self, r: Gpr) -> i64 {
        self.regs[r.index()]
    }

    fn operand(&self, op: wishbranch_isa::Operand) -> i64 {
        match op {
            wishbranch_isa::Operand::Reg(r) => self.reg(r),
            wishbranch_isa::Operand::Imm(i) => i64::from(i),
        }
    }

    fn write_reg(&mut self, seq: u64, r: Gpr, v: i64) {
        self.log.push_back((seq, Undo::Reg(r.index() as u8, self.regs[r.index()])));
        self.regs[r.index()] = v;
    }

    fn write_pred(&mut self, seq: u64, p: PredReg, v: bool) {
        if p.is_hardwired_true() {
            return;
        }
        self.log.push_back((seq, Undo::Pred(p.index() as u8, self.preds[p.index()])));
        self.preds[p.index()] = v;
    }

    fn write_mem(&mut self, seq: u64, addr: u64, v: i64) {
        let old = self.mem.insert(addr, v);
        self.log.push_back((seq, Undo::Mem(addr, old)));
    }

    /// Peeks the direction a conditional branch would take right now
    /// (used by the perfect-confidence oracle at fetch).
    pub(crate) fn peek_cond(&self, insn: &Insn) -> Option<bool> {
        match insn.kind {
            InsnKind::Branch {
                kind: BranchKind::Cond { pred, sense },
                ..
            } => Some(self.preds[pred.index()] == sense),
            _ => None,
        }
    }

    /// Executes the µop at `pc` with sequence number `seq`. For control
    /// µops, `forced_next` is the pc fetch decided to go to (from the
    /// predictors / wish-branch rules); the emulator follows it but reports
    /// the architecturally correct next pc so the core can detect the
    /// misprediction at branch-execute time.
    pub(crate) fn exec(
        &mut self,
        seq: u64,
        pc: u32,
        insn: &Insn,
        forced_next: Option<u32>,
        hw_guard_ok: Option<bool>,
    ) -> StepInfo {
        // A hardware-injected guard (dynamic hammock predication) composes
        // with any architectural guard. Its value was captured when the
        // predicated branch was fetched — hardware holds the *renamed*
        // condition, so later redefinitions of the register in the guarded
        // arms must not affect it.
        let guard_true =
            hw_guard_ok.unwrap_or(true) && insn.guard.is_none_or(|g| self.preds[g.index()]);
        let fall = pc + 1;
        let mut info = StepInfo {
            guard_true,
            actual_taken: false,
            actual_next: fall,
            followed_next: fall,
            mem_addr: None,
            is_store: false,
            halted: false,
            pred_values: [None, None],
            reg_write: None,
            store_value: None,
        };
        if !guard_true {
            // Architectural NOP (C-style: the old destination value is kept).
            info.followed_next = forced_next.unwrap_or(fall);
            // A guard-false branch architecturally falls through.
            info.actual_next = fall;
            return info;
        }
        match insn.kind {
            InsnKind::Alu {
                op,
                dst,
                src1,
                src2,
            } => {
                let v = op.apply(self.reg(src1), self.operand(src2));
                self.write_reg(seq, dst, v);
                info.reg_write = Some((dst.index() as u8, v));
            }
            InsnKind::MovImm { dst, imm } => {
                self.write_reg(seq, dst, imm);
                info.reg_write = Some((dst.index() as u8, imm));
            }
            InsnKind::Cmp {
                op,
                dst,
                src1,
                src2,
            } => {
                let v = op.apply(self.reg(src1), self.operand(src2));
                self.write_pred(seq, dst, v);
                info.pred_values[0] = Some(v);
            }
            InsnKind::Cmp2 {
                op,
                dst_t,
                dst_f,
                src1,
                src2,
            } => {
                let v = op.apply(self.reg(src1), self.operand(src2));
                // Two undo records for one seq — both unwound together.
                self.write_pred(seq, dst_t, v);
                self.write_pred(seq, dst_f, !v);
                info.pred_values = [Some(v), Some(!v)];
            }
            InsnKind::PredRR {
                op,
                dst,
                src1,
                src2,
            } => {
                let v = op.apply(self.preds[src1.index()], self.preds[src2.index()]);
                self.write_pred(seq, dst, v);
                info.pred_values[0] = Some(v);
            }
            InsnKind::PredNot { dst, src } => {
                let v = !self.preds[src.index()];
                self.write_pred(seq, dst, v);
                info.pred_values[0] = Some(v);
            }
            InsnKind::PredSet { dst, value } => {
                self.write_pred(seq, dst, value);
                info.pred_values[0] = Some(value);
            }
            InsnKind::Load { dst, base, offset } => {
                let addr = self.reg(base).wrapping_add(i64::from(offset)) as u64;
                let v = self.mem.load(addr);
                self.write_reg(seq, dst, v);
                info.mem_addr = Some(addr);
                info.reg_write = Some((dst.index() as u8, v));
            }
            InsnKind::Store { src, base, offset } => {
                let addr = self.reg(base).wrapping_add(i64::from(offset)) as u64;
                let v = self.reg(src);
                self.write_mem(seq, addr, v);
                info.mem_addr = Some(addr);
                info.is_store = true;
                info.store_value = Some(v);
            }
            InsnKind::Branch { kind, target } => {
                match kind {
                    BranchKind::Cond { pred, sense } => {
                        info.actual_taken = self.preds[pred.index()] == sense;
                        info.actual_next = if info.actual_taken { target } else { fall };
                    }
                    BranchKind::Uncond => {
                        info.actual_next = target;
                    }
                    BranchKind::Call => {
                        self.write_reg(seq, Gpr::LINK, i64::from(fall));
                        info.reg_write = Some((Gpr::LINK.index() as u8, i64::from(fall)));
                        info.actual_next = target;
                    }
                    BranchKind::Ret => {
                        info.actual_next = self.reg(Gpr::LINK) as u32;
                    }
                    BranchKind::Indirect { target: reg } => {
                        info.actual_next = self.reg(reg) as u32;
                    }
                }
                info.followed_next = forced_next.unwrap_or(info.actual_next);
                return info;
            }
            InsnKind::Halt => info.halted = true,
            InsnKind::Nop => {}
        }
        info.followed_next = forced_next.unwrap_or(fall);
        info
    }

    /// Unwinds every µop with sequence number strictly greater than
    /// `keep_seq`, restoring the state right after `keep_seq` executed.
    pub(crate) fn rollback_after(&mut self, keep_seq: u64) {
        while let Some(&(seq, _)) = self.log.back() {
            if seq <= keep_seq {
                break;
            }
            let (_, undo) = self.log.pop_back().expect("checked non-empty");
            match undo {
                Undo::Reg(i, old) => self.regs[i as usize] = old,
                Undo::Pred(i, old) => self.preds[i as usize] = old,
                Undo::Mem(addr, Some(old)) => {
                    self.mem.insert(addr, old);
                }
                Undo::Mem(addr, None) => {
                    self.mem.remove(addr);
                }
            }
        }
    }

    /// Drops undo records for µops with sequence ≤ `seq` (they have
    /// retired and can never be rolled back). Keeps the log bounded.
    pub(crate) fn commit_through(&mut self, seq: u64) {
        while let Some(&(s, _)) = self.log.front() {
            if s > seq {
                break;
            }
            self.log.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use wishbranch_isa::{AluOp, CmpOp, Operand};

    fn r(i: u8) -> Gpr {
        Gpr::new(i)
    }
    fn p(i: u8) -> PredReg {
        PredReg::new(i)
    }

    #[test]
    fn exec_and_rollback_registers() {
        let mut e = SpecEmulator::new();
        e.exec(1, 0, &Insn::mov_imm(r(1), 10), None, None);
        e.exec(2, 1, &Insn::alu(AluOp::Add, r(1), r(1), Operand::imm(5)), None, None);
        assert_eq!(e.regs[1], 15);
        e.rollback_after(1);
        assert_eq!(e.regs[1], 10);
        e.rollback_after(0);
        assert_eq!(e.regs[1], 0);
    }

    #[test]
    fn rollback_memory_insert_and_overwrite() {
        let mut e = SpecEmulator::new();
        e.regs[2] = 0x100;
        e.exec(1, 0, &Insn::mov_imm(r(3), 7), None, None);
        e.exec(2, 1, &Insn::store(r(3), r(2), 0), None, None);
        assert_eq!(e.mem.get(0x100), Some(7));
        e.exec(3, 2, &Insn::mov_imm(r(3), 9), None, None);
        e.exec(4, 3, &Insn::store(r(3), r(2), 0), None, None);
        assert_eq!(e.mem.get(0x100), Some(9));
        e.rollback_after(2);
        assert_eq!(e.mem.get(0x100), Some(7));
        e.rollback_after(1);
        assert_eq!(e.mem.get(0x100), None);
    }

    #[test]
    fn forced_branch_direction_reports_actual() {
        let mut e = SpecEmulator::new();
        e.exec(1, 0, &Insn::mov_imm(r(1), 1), None, None);
        e.exec(2, 1, &Insn::cmp(CmpOp::Eq, p(1), r(1), Operand::imm(1)), None, None);
        let br = Insn::branch(BranchKind::cond(p(1), true), 50);
        // Fetch forces fall-through although the branch is actually taken.
        let info = e.exec(3, 2, &br, Some(3), None);
        assert!(info.actual_taken);
        assert_eq!(info.actual_next, 50);
        assert_eq!(info.followed_next, 3);
    }

    #[test]
    fn guard_false_is_nop_and_reports() {
        let mut e = SpecEmulator::new();
        let i = Insn::mov_imm(r(1), 42).guarded(p(2)); // p2 = false
        let info = e.exec(1, 0, &i, None, None);
        assert!(!info.guard_true);
        assert_eq!(e.regs[1], 0);
        e.rollback_after(0); // must not underflow or corrupt
        assert_eq!(e.regs[1], 0);
    }

    #[test]
    fn cmp2_rolls_back_both_predicates() {
        let mut e = SpecEmulator::new();
        e.exec(1, 0, &Insn::cmp2(CmpOp::Eq, p(1), p(2), r(0), Operand::imm(0)), None, None);
        assert!(e.preds[1]);
        assert!(!e.preds[2]);
        e.rollback_after(0);
        assert!(!e.preds[1]);
        assert!(!e.preds[2]);
    }

    #[test]
    fn commit_bounds_the_log() {
        let mut e = SpecEmulator::new();
        for s in 1..=100 {
            e.exec(s, 0, &Insn::mov_imm(r(1), s as i64), None, None);
        }
        e.commit_through(90);
        assert!(e.log.len() <= 10);
        e.rollback_after(95);
        assert_eq!(e.regs[1], 95);
    }

    #[test]
    fn paged_mem_dump_is_sorted_and_tracks_presence() {
        let mut m = PagedMem::default();
        // Spread across pages, inserted out of order.
        assert_eq!(m.insert(0x10_000, 1), None);
        assert_eq!(m.insert(0x3, -4), None);
        assert_eq!(m.insert(0x3, 5), Some(-4));
        assert_eq!(m.insert(0x1ff, 9), None); // last word of page 1
        assert_eq!(m.load(0x3), 5);
        assert_eq!(m.load(0x4), 0); // absent word of a live page
        assert_eq!(m.load(0x999_999), 0); // absent page
        m.remove(0x1ff);
        assert_eq!(m.get(0x1ff), None);
        assert_eq!(m.load(0x1ff), 0);
        assert_eq!(m.sorted_entries(), vec![(0x3, 5), (0x10_000, 1)]);
    }

    #[test]
    fn empty_pages_are_reclaimed_on_remove() {
        let mut m = PagedMem::default();
        assert_eq!(m.page_count(), 0);
        m.insert(0x3, 1); // page 0
        m.insert(0x10_000, 2); // page 0x100
        m.insert(0x10_001, 3); // same page
        m.insert(0x20_000, 4); // page 0x200
        assert_eq!(m.page_count(), 3);
        // Removing one of two live words keeps the page.
        m.remove(0x10_001);
        assert_eq!(m.page_count(), 3);
        // Removing the last live word reclaims the page.
        m.remove(0x10_000);
        assert_eq!(m.page_count(), 2);
        // Removing the middle slot exercises the swap_remove index fixup:
        // the moved page must remain addressable.
        m.remove(0x3);
        assert_eq!(m.page_count(), 1);
        assert_eq!(m.get(0x20_000), Some(4));
        assert_eq!(m.load(0x20_000), 4);
        m.remove(0x20_000);
        assert_eq!(m.page_count(), 0);
        assert_eq!(m.sorted_entries(), vec![]);
        // A reclaimed page can be repopulated.
        m.insert(0x10_000, 9);
        assert_eq!(m.get(0x10_000), Some(9));
        assert_eq!(m.page_count(), 1);
    }

    #[test]
    fn full_rollback_restores_page_count() {
        let mut e = SpecEmulator::new();
        let pre = e.mem.page_count();
        // First-touch stores to several fresh pages, all speculative.
        for (s, page) in (1u64..=6).zip([0x1u64, 0x2, 0x3, 0x4, 0x5, 0x6]) {
            e.regs[2] = (page << 12) as i64;
            e.exec(s * 2 - 1, 0, &Insn::mov_imm(r(3), s as i64), None, None);
            e.exec(s * 2, 1, &Insn::store(r(3), r(2), 0), None, None);
        }
        assert!(e.mem.page_count() > pre);
        e.rollback_after(0);
        assert_eq!(
            e.mem.page_count(),
            pre,
            "rollback of first-touch stores must reclaim their pages"
        );
    }
}
