//! Machine configuration (Table 2 defaults).

use wishbranch_bpred::{BtbConfig, HybridConfig, JrsConfig, LoopPredConfig};
use wishbranch_mem::MemConfig;

/// How the out-of-order core handles predicated instructions.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PredMechanism {
    /// C-style conditional expressions (§2.1): a guarded µop reads
    /// {guard, sources, old destination} and always writes its destination.
    /// One µop, four register sources.
    CStyle,
    /// The select-µop mechanism (Wang et al., §5.3.3): decode splits a
    /// guarded µop into an unguarded compute µop (which may execute before
    /// the predicate is ready) and a `select` µop merging the result with
    /// the old destination under the predicate. Two µops.
    SelectUop,
}

/// Idealization knobs used by the paper's oracle experiments.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct OracleConfig {
    /// PERFECT-CBP (Fig. 2): every branch is predicted perfectly; no
    /// flushes ever happen.
    pub perfect_branch_prediction: bool,
    /// Perfect confidence estimation (Figs. 10/12/16): a wish branch is
    /// high confidence exactly when the predictor is about to be right.
    pub perfect_confidence: bool,
    /// NO-DEPEND (Fig. 2): predication-induced dependencies (guard and
    /// old-destination) are resolved instantly with oracle values.
    pub no_pred_dependencies: bool,
    /// NO-FETCH (Fig. 2): µops whose guard is FALSE consume no fetch,
    /// window, or execution bandwidth at all.
    pub no_false_predicate_fetch: bool,
}

/// Full machine configuration. Defaults reproduce Table 2 of the paper.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Fetch width in µops/cycle (Table 2: 8).
    pub fetch_width: usize,
    /// Maximum conditional branches fetched per cycle (Table 2: 3).
    pub max_cond_branches_per_cycle: usize,
    /// Reorder buffer entries (Table 2: 512).
    pub rob_size: usize,
    /// Issue/execute width in µops/cycle (Table 2: 8).
    pub issue_width: usize,
    /// Retire width in µops/cycle (Table 2: 8).
    pub retire_width: usize,
    /// Front-end pipeline depth in cycles from fetch to rename/dispatch.
    /// This is what makes the minimum branch misprediction penalty
    /// (Table 2: 30 cycles).
    pub pipeline_depth: u64,
    /// Extra fetch bubble charged when a predicted-taken branch misses the
    /// BTB and the target is only available after decode.
    pub btb_miss_penalty: u64,
    /// Cache hierarchy configuration.
    pub mem: MemConfig,
    /// Hybrid direction-predictor configuration.
    pub bpred: HybridConfig,
    /// BTB configuration.
    pub btb: BtbConfig,
    /// JRS confidence estimator configuration.
    pub jrs: JrsConfig,
    /// Predication handling mechanism.
    pub pred_mechanism: PredMechanism,
    /// Whether the wish-branch hardware is present. When `false`, wish
    /// hints are ignored and wish branches behave as normal conditional
    /// branches (§3.4's backward compatibility).
    pub wish_enabled: bool,
    /// Oracle idealizations.
    pub oracles: OracleConfig,
    /// Predicate prediction (Chuang & Calder, the paper's §6.1 related
    /// work): every predicate-defining µop's result is predicted at fetch
    /// with a per-PC two-bit counter; consumers execute immediately with
    /// the predicted value, and a wrong prediction flushes the pipeline
    /// when the definition executes. The paper argues this removes
    /// predication's *execution* delay but — unlike wish branches — cannot
    /// remove the fetch of useless predicated instructions, and loses on
    /// hard-to-predict predicates.
    pub predicate_prediction: bool,
    /// Dynamic hammock predication (Klauser et al., the paper's §6.1
    /// hardware-only alternative): when enabled, a *normal* conditional
    /// branch with a low-confidence prediction whose fall-through region is
    /// a simple branch-free hammock (skip-triangle or diamond) is predicated
    /// in hardware — both arms are fetched with injected guards and the
    /// branch never flushes. Wish hints are unaffected; DHP only applies to
    /// branches without them. Modeled on the C-style machine.
    pub dhp_enabled: bool,
    /// Largest arm (in µops) DHP will predicate.
    pub dhp_max_block: u32,
    /// Optional specialized wish-loop predictor (§3.2's extension): when
    /// set, wish loops are predicted by a trip-count predictor — which can
    /// be biased to overestimate so mispredictions fall into the cheap
    /// late-exit class — falling back to the hybrid when unconfident.
    pub wish_loop_predictor: Option<LoopPredConfig>,
    /// Safety valve: abort after this many cycles.
    pub max_cycles: u64,
    /// Integer multiply latency.
    pub mul_latency: u64,
    /// Integer divide latency.
    pub div_latency: u64,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            fetch_width: 8,
            max_cond_branches_per_cycle: 3,
            rob_size: 512,
            issue_width: 8,
            retire_width: 8,
            pipeline_depth: 30,
            btb_miss_penalty: 2,
            mem: MemConfig::default(),
            bpred: HybridConfig::default(),
            btb: BtbConfig::default(),
            jrs: JrsConfig::default(),
            pred_mechanism: PredMechanism::CStyle,
            wish_enabled: true,
            oracles: OracleConfig::default(),
            predicate_prediction: false,
            dhp_enabled: false,
            dhp_max_block: 16,
            wish_loop_predictor: None,
            max_cycles: 2_000_000_000,
            mul_latency: 3,
            div_latency: 12,
        }
    }
}

impl MachineConfig {
    /// Front-end fetch-queue capacity implied by this configuration:
    /// `fetch_width` µops per decode stage, across `pipeline_depth` stages
    /// plus two slack stages. The formula floors at 2 entries
    /// (`fetch_width ≥ 1`, depth ≥ 0), so a literal 1-entry queue is not
    /// expressible. The simulator caches this per run — it must not change
    /// while a simulation is in flight.
    #[must_use]
    pub fn fetch_queue_cap(&self) -> usize {
        self.fetch_width * (self.pipeline_depth as usize + 2)
    }

    /// The default machine with a different instruction window (ROB) size —
    /// the Fig. 14 sweep.
    #[must_use]
    pub fn with_window(mut self, rob: usize) -> Self {
        self.rob_size = rob;
        self
    }

    /// The default machine with a different pipeline depth — the Fig. 15
    /// sweep.
    #[must_use]
    pub fn with_depth(mut self, depth: u64) -> Self {
        self.pipeline_depth = depth;
        self
    }

    /// The same machine with a different per-job cycle budget. Exhausting
    /// the budget is a typed [`SimError::CycleLimitExceeded`] outcome from
    /// [`Simulator::run`], not a panic.
    ///
    /// [`SimError::CycleLimitExceeded`]: crate::SimError::CycleLimitExceeded
    /// [`Simulator::run`]: crate::Simulator::run
    #[must_use]
    pub fn with_max_cycles(mut self, max_cycles: u64) -> Self {
        self.max_cycles = max_cycles;
        self
    }
}
