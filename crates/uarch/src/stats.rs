//! Simulation statistics, shaped to regenerate the paper's figures.

use std::collections::BTreeMap;
use wishbranch_mem::CacheStats;

/// Counts for one wish-branch class (Fig. 11 / Fig. 13 bars).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct WishClassCounts {
    /// Estimated high confidence, prediction was correct.
    pub high_correct: u64,
    /// Estimated high confidence, prediction was wrong (pipeline flush).
    pub high_mispredicted: u64,
    /// Estimated low confidence, prediction would have been correct
    /// (pure predication overhead).
    pub low_correct: u64,
    /// Estimated low confidence, prediction would have been wrong
    /// (a flush was avoided).
    pub low_mispredicted: u64,
}

impl WishClassCounts {
    /// Total dynamic wish branches of this kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.high_correct + self.high_mispredicted + self.low_correct + self.low_mispredicted
    }
}

/// How a mispredicted low-confidence wish loop resolved (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopExitClass {
    /// Fewer iterations fetched than needed: flush.
    EarlyExit,
    /// A few extra iterations fetched, front end already out: no flush —
    /// the case where wish loops win.
    LateExit,
    /// Front end still spinning in the loop: flush.
    NoExit,
}

/// Where every cycle of a run went: each simulated cycle is attributed to
/// **exactly one** category, so `total()` equals `SimStats::cycles` — a
/// hard invariant the test suite enforces for every benchmark × variant.
///
/// The attribution point is the retire stage (top-down accounting): a
/// cycle in which µops retire is classified by *what* retired, and a cycle
/// in which nothing retires is classified by *why* — working backwards
/// from the ROB to the front end. This turns the paper's Eq. 4.1–4.3
/// overhead terms and the Fig. 2 oracle deltas into direct measurements:
///
/// * `guard_false_retire` cycles are predication's fetch/execution
///   overhead of useless instructions (the NO-FETCH oracle's target);
/// * `exec_wait` contains the predicate-dependency delay (the NO-DEPEND
///   oracle's target) along with plain data-dependency and memory stalls;
/// * `flush_recovery` + the fetch categories are the misprediction-penalty
///   term wish branches trade against predication overhead.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct CycleAccounting {
    /// At least one useful µop retired (not guard-false, not a select µop).
    pub useful_retire: u64,
    /// µops retired, but every one of them was a guard-false predicated
    /// µop (the retire bandwidth went entirely to predication overhead).
    pub guard_false_retire: u64,
    /// µops retired, but every one of them was select-µop overhead
    /// (§5.3.3 machine only).
    pub select_uop_retire: u64,
    /// Nothing retired: the ROB head is still executing (data dependences,
    /// cache misses, long-latency ops, or an unresolved branch).
    pub exec_wait: u64,
    /// Nothing retired and the ROB is full: the window is the bottleneck
    /// (dispatch is blocked behind a stalled head).
    pub rob_stall: u64,
    /// Nothing retired, ROB empty, within the refill shadow of a pipeline
    /// flush: the misprediction-recovery cost wish branches avoid.
    pub flush_recovery: u64,
    /// Nothing retired, ROB empty, fetch stalled on an I-cache miss.
    pub fetch_imiss: u64,
    /// Nothing retired, ROB empty, fetch redirecting (taken-branch realign
    /// or BTB-miss bubble).
    pub fetch_redirect: u64,
    /// Nothing retired, ROB empty, µops in flight in the front-end queue
    /// (initial pipeline fill or end-of-program drain).
    pub frontend_fill: u64,
    /// Nothing retired and a ready load/store could not issue because
    /// every MSHR it needed was busy (non-blocking hierarchy only; always
    /// zero under the flat latency model).
    pub mshr_full: u64,
    /// Nothing retired, the window is not full, and at least one line fill
    /// is still outstanding: the core is waiting on memory (non-blocking
    /// hierarchy only; always zero under the flat latency model).
    pub miss_pending: u64,
    /// Nothing retired, ROB empty, fetch stalled on an I-miss whose fill
    /// is still in flight in the I-MSHRs (non-blocking hierarchy only;
    /// always zero under the flat latency model, whose I-miss stalls stay
    /// in `fetch_imiss`).
    pub imiss_pending: u64,
    /// Nothing retired and a ready store could not issue because the
    /// write buffer had no free entry (non-blocking hierarchy with
    /// `write_buffer_entries` > 0 only; always zero otherwise).
    pub writebuf_full: u64,
}

impl CycleAccounting {
    /// Sum over every category. The accounting invariant is
    /// `total() == SimStats::cycles`.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.useful_retire
            + self.guard_false_retire
            + self.select_uop_retire
            + self.exec_wait
            + self.rob_stall
            + self.flush_recovery
            + self.fetch_imiss
            + self.fetch_redirect
            + self.frontend_fill
            + self.mshr_full
            + self.miss_pending
            + self.imiss_pending
            + self.writebuf_full
    }

    /// `(category name, cycles)` rows in a stable order, for rendering and
    /// machine-readable reports. The non-blocking-hierarchy causes come
    /// last so the legacy nine keep their historical positions.
    #[must_use]
    pub fn rows(&self) -> [(&'static str, u64); 13] {
        [
            ("useful_retire", self.useful_retire),
            ("guard_false_retire", self.guard_false_retire),
            ("select_uop_retire", self.select_uop_retire),
            ("exec_wait", self.exec_wait),
            ("rob_stall", self.rob_stall),
            ("flush_recovery", self.flush_recovery),
            ("fetch_imiss", self.fetch_imiss),
            ("fetch_redirect", self.fetch_redirect),
            ("frontend_fill", self.frontend_fill),
            ("mshr_full", self.mshr_full),
            ("miss_pending", self.miss_pending),
            ("imiss_pending", self.imiss_pending),
            ("writebuf_full", self.writebuf_full),
        ]
    }
}

/// Per-PC counters for the hot-site table: which static branch sites cause
/// flushes, avoid them, and pay guard-false predication overhead — the
/// measured substrate behind Fig. 11/13-style claims.
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct HotSiteCounts {
    /// Pipeline flushes triggered at this PC.
    pub flushes: u64,
    /// Flushes avoided at this PC (low-confidence wish branches, late-exit
    /// wish loops, DHP).
    pub flushes_avoided: u64,
    /// Guard-false µops retired at this PC.
    pub guard_false_uops: u64,
}

impl HotSiteCounts {
    /// Activity score used to rank hot sites.
    #[must_use]
    pub fn score(&self) -> u64 {
        self.flushes + self.flushes_avoided + self.guard_false_uops
    }
}

/// Aggregate counters for one simulation.
#[derive(Clone, PartialEq, Default, Debug)]
pub struct SimStats {
    /// Total cycles to retire the program.
    pub cycles: u64,
    /// Retired µops (including guard-false NOPs and select µops).
    pub retired_uops: u64,
    /// Retired µops whose guard read FALSE (predication overhead #1).
    pub retired_guard_false: u64,
    /// Extra select µops retired (select-µop mechanism overhead).
    pub retired_select_uops: u64,
    /// Retired conditional branches (wish or normal).
    pub retired_cond_branches: u64,
    /// Pipeline flushes due to branch mispredictions.
    pub flushes: u64,
    /// Mispredicted retired conditional branches (including non-flushing
    /// low-confidence wish branches).
    pub retired_mispredicted: u64,
    /// Flushes avoided by low-confidence wish jumps/joins and late-exit
    /// wish loops.
    pub flushes_avoided: u64,
    /// Total µops fetched (both paths).
    pub fetched_uops: u64,
    /// Cycles in which fetch delivered no µop (stall, redirect, I-miss,
    /// queue full, or blocked).
    pub fetch_idle_cycles: u64,
    /// Fetch-idle cycles caused by an I-cache miss in progress.
    pub fetch_idle_imiss: u64,
    /// Fetch-idle cycles caused by a redirect bubble (post-flush resteer,
    /// BTB-miss target bubble, or taken-branch realign).
    pub fetch_idle_redirect: u64,
    /// Fetch-idle cycles caused by a full front-end queue (dispatch is the
    /// bottleneck).
    pub fetch_idle_queue_full: u64,
    /// Fetch-idle cycles with fetch blocked (`halt` fetched, or wrong-path
    /// fetch ran off the program image and is waiting for the flush).
    pub fetch_idle_blocked: u64,
    /// Cycles in which dispatch moved nothing into the ROB.
    pub dispatch_idle_cycles: u64,
    /// Cycles in which nothing retired.
    pub retire_idle_cycles: u64,
    /// Wrong-path µops squashed.
    pub squashed_uops: u64,
    /// Branches dynamically hammock-predicated (DHP extension).
    pub dhp_predications: u64,
    /// Flushes avoided by DHP (subset of `flushes_avoided`).
    pub dhp_flushes_avoided: u64,
    /// Predicate-value predictions made (predicate-prediction baseline).
    pub pred_value_predictions: u64,
    /// Predicate-value mispredictions (each one flushes).
    pub pred_value_mispredictions: u64,
    /// Loads whose value was forwarded from an older in-flight store
    /// (store-to-load forwarding; zero when the knob is off).
    pub store_forwards: u64,
    /// Cycles a ready load stayed blocked on a *partially* overlapping
    /// older store (conservative replay; zero when forwarding is off).
    pub load_replays: u64,
    /// Issue attempts refused because the memory hierarchy had no free
    /// MSHR (each refused µop retries; zero under the flat model).
    pub mshr_full_stalls: u64,
    /// Issue attempts refused because every data-cache port was taken
    /// this cycle (`MemConfig::data_ports`; zero when unlimited).
    pub port_conflict_stalls: u64,
    /// Store issues refused because the asynchronous write buffer was
    /// full (`MemConfig::write_buffer_entries`; zero when disabled).
    pub writebuf_full_stalls: u64,
    /// In-flight instruction fills cancelled as wrong-path on pipeline
    /// squashes (non-blocking hierarchy only).
    pub wrong_path_fills: u64,
    /// Wish jump dynamics by confidence class (retired only).
    pub wish_jumps: WishClassCounts,
    /// Wish join dynamics by confidence class (retired only).
    pub wish_joins: WishClassCounts,
    /// Wish loop dynamics by confidence class (retired only).
    pub wish_loops: WishClassCounts,
    /// Mispredicted low-confidence wish loops by exit class.
    pub loop_early_exits: u64,
    /// Late-exit count (the winning case).
    pub loop_late_exits: u64,
    /// No-exit count.
    pub loop_no_exits: u64,
    /// Single-cause attribution of every cycle (`total() == cycles`).
    pub cycle_accounting: CycleAccounting,
    /// Per-PC flush / flush-avoided / guard-false counters. Deterministic
    /// (BTreeMap) so parallel and serial runs stay bit-identical. During a
    /// run the simulator counts into a flat per-PC array and folds the
    /// touched rows in here once at the end.
    pub hot_sites: BTreeMap<u32, HotSiteCounts>,
    /// I-cache statistics.
    pub icache: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
}

impl SimStats {
    /// Retired µops per cycle.
    #[must_use]
    pub fn upc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_uops as f64 / self.cycles as f64
        }
    }

    /// Mispredicted branches per 1000 retired µops (Table 4's metric).
    #[must_use]
    pub fn mispredicts_per_kuop(&self) -> f64 {
        if self.retired_uops == 0 {
            0.0
        } else {
            self.retired_mispredicted as f64 * 1000.0 / self.retired_uops as f64
        }
    }

    /// Dynamic wish branches of all kinds (retired).
    #[must_use]
    pub fn wish_branches_total(&self) -> u64 {
        self.wish_jumps.total() + self.wish_joins.total() + self.wish_loops.total()
    }

    /// Scales a count to "per one million retired µops" (Figs. 11/13).
    /// With no retired µops the rate is undefined, not zero: NaN here is
    /// the explicit-gap marker that `jf`/`cf` render as `null`/empty.
    #[must_use]
    pub fn per_million_uops(&self, count: u64) -> f64 {
        if self.retired_uops == 0 {
            f64::NAN
        } else {
            count as f64 * 1.0e6 / self.retired_uops as f64
        }
    }

    /// The `n` most active sites of the per-PC table, ranked by
    /// [`HotSiteCounts::score`] (ties broken by PC, so the order is
    /// deterministic).
    #[must_use]
    pub fn top_sites(&self, n: usize) -> Vec<(u32, HotSiteCounts)> {
        let mut sites: Vec<(u32, HotSiteCounts)> =
            self.hot_sites.iter().map(|(&pc, &c)| (pc, c)).collect();
        sites.sort_by(|a, b| b.1.score().cmp(&a.1.score()).then(a.0.cmp(&b.0)));
        sites.truncate(n);
        sites
    }
}
