//! Simulation statistics, shaped to regenerate the paper's figures.

use wishbranch_mem::CacheStats;

/// Counts for one wish-branch class (Fig. 11 / Fig. 13 bars).
#[derive(Clone, Copy, PartialEq, Eq, Default, Debug)]
pub struct WishClassCounts {
    /// Estimated high confidence, prediction was correct.
    pub high_correct: u64,
    /// Estimated high confidence, prediction was wrong (pipeline flush).
    pub high_mispredicted: u64,
    /// Estimated low confidence, prediction would have been correct
    /// (pure predication overhead).
    pub low_correct: u64,
    /// Estimated low confidence, prediction would have been wrong
    /// (a flush was avoided).
    pub low_mispredicted: u64,
}

impl WishClassCounts {
    /// Total dynamic wish branches of this kind.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.high_correct + self.high_mispredicted + self.low_correct + self.low_mispredicted
    }
}

/// How a mispredicted low-confidence wish loop resolved (§3.2).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum LoopExitClass {
    /// Fewer iterations fetched than needed: flush.
    EarlyExit,
    /// A few extra iterations fetched, front end already out: no flush —
    /// the case where wish loops win.
    LateExit,
    /// Front end still spinning in the loop: flush.
    NoExit,
}

/// Aggregate counters for one simulation.
#[derive(Clone, PartialEq, Default, Debug)]
pub struct SimStats {
    /// Total cycles to retire the program.
    pub cycles: u64,
    /// Retired µops (including guard-false NOPs and select µops).
    pub retired_uops: u64,
    /// Retired µops whose guard read FALSE (predication overhead #1).
    pub retired_guard_false: u64,
    /// Extra select µops retired (select-µop mechanism overhead).
    pub retired_select_uops: u64,
    /// Retired conditional branches (wish or normal).
    pub retired_cond_branches: u64,
    /// Pipeline flushes due to branch mispredictions.
    pub flushes: u64,
    /// Mispredicted retired conditional branches (including non-flushing
    /// low-confidence wish branches).
    pub retired_mispredicted: u64,
    /// Flushes avoided by low-confidence wish jumps/joins and late-exit
    /// wish loops.
    pub flushes_avoided: u64,
    /// Total µops fetched (both paths).
    pub fetched_uops: u64,
    /// Cycles in which fetch delivered no µop (stall, redirect, I-miss,
    /// queue full, or blocked).
    pub fetch_idle_cycles: u64,
    /// Cycles in which dispatch moved nothing into the ROB.
    pub dispatch_idle_cycles: u64,
    /// Cycles in which nothing retired.
    pub retire_idle_cycles: u64,
    /// Wrong-path µops squashed.
    pub squashed_uops: u64,
    /// Branches dynamically hammock-predicated (DHP extension).
    pub dhp_predications: u64,
    /// Flushes avoided by DHP (subset of `flushes_avoided`).
    pub dhp_flushes_avoided: u64,
    /// Predicate-value predictions made (predicate-prediction baseline).
    pub pred_value_predictions: u64,
    /// Predicate-value mispredictions (each one flushes).
    pub pred_value_mispredictions: u64,
    /// Wish jump dynamics by confidence class (retired only).
    pub wish_jumps: WishClassCounts,
    /// Wish join dynamics by confidence class (retired only).
    pub wish_joins: WishClassCounts,
    /// Wish loop dynamics by confidence class (retired only).
    pub wish_loops: WishClassCounts,
    /// Mispredicted low-confidence wish loops by exit class.
    pub loop_early_exits: u64,
    /// Late-exit count (the winning case).
    pub loop_late_exits: u64,
    /// No-exit count.
    pub loop_no_exits: u64,
    /// I-cache statistics.
    pub icache: CacheStats,
    /// L1 data cache statistics.
    pub l1d: CacheStats,
    /// L2 statistics.
    pub l2: CacheStats,
}

impl SimStats {
    /// Retired µops per cycle.
    #[must_use]
    pub fn upc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.retired_uops as f64 / self.cycles as f64
        }
    }

    /// Mispredicted branches per 1000 retired µops (Table 4's metric).
    #[must_use]
    pub fn mispredicts_per_kuop(&self) -> f64 {
        if self.retired_uops == 0 {
            0.0
        } else {
            self.retired_mispredicted as f64 * 1000.0 / self.retired_uops as f64
        }
    }

    /// Dynamic wish branches of all kinds (retired).
    #[must_use]
    pub fn wish_branches_total(&self) -> u64 {
        self.wish_jumps.total() + self.wish_joins.total() + self.wish_loops.total()
    }

    /// Scales a count to "per one million retired µops" (Figs. 11/13).
    #[must_use]
    pub fn per_million_uops(&self, count: u64) -> f64 {
        if self.retired_uops == 0 {
            0.0
        } else {
            count as f64 * 1.0e6 / self.retired_uops as f64
        }
    }
}
