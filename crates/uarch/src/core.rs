//! The cycle-level out-of-order core.
//!
//! Per-cycle stage order: retire → branch resolution → issue/execute →
//! dispatch/rename → fetch. Fetch runs the speculative emulator
//! ([`crate::emu::SpecEmulator`]) along the predicted path; branch
//! resolution compares the predicted direction with the architectural one
//! and flushes (or, for wish branches in low-confidence mode, deliberately
//! does not flush) per §3.5.4 of the paper.

use crate::config::{MachineConfig, OracleConfig, PredMechanism};
use crate::emu::{SpecEmulator, StepInfo};
use crate::stats::{HotSiteCounts, LoopExitClass, SimStats, WishClassCounts};
use std::collections::{HashMap, VecDeque};
use std::error::Error;
use std::fmt;
use wishbranch_bpred::{
    Btb, BtbEntry, BtbKind, HybridPredictor, HybridToken, IndirectConfig, IndirectTargetCache,
    JrsConfidence, LoopPredictor, LoopToken, RasCheckpoint, ReturnAddressStack,
};
use wishbranch_isa::{
    insn_addr, BranchKind, Gpr, Insn, InsnKind, PredReg, Program, WishType, NUM_GPRS, NUM_PREDS,
};
use wishbranch_mem::MemoryHierarchy;

/// Errors from [`Simulator::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The cycle budget was exhausted before `halt` retired.
    CycleLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "program did not retire halt within {limit} cycles")
            }
        }
    }
}

impl Error for SimError {}

/// Outcome of a simulation.
#[derive(Clone, PartialEq, Debug)]
pub struct SimResult {
    /// All statistics.
    pub stats: SimStats,
    /// Final (retired) general registers.
    pub final_regs: [i64; NUM_GPRS],
    /// Final (retired) predicate registers.
    pub final_preds: [bool; NUM_PREDS],
    /// Final (retired) memory, sorted.
    pub final_mem: std::collections::BTreeMap<u64, i64>,
}

/// Dynamic-hammock-predication fetch state: which region is currently
/// being fetched under an injected guard.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum DhpState {
    Off,
    /// Guarding the fall-through arm. At `until`, either stop (triangle) or
    /// redirect into the taken arm (`then` = (taken_start, taken_until,
    /// skip_to-after-taken)).
    GuardFall {
        pred: PredReg,
        negated: bool,
        /// Architectural value of `pred` when the branch was fetched (the
        /// renamed condition real hardware would hold).
        cond: bool,
        until: u32,
        then: Option<(u32, u32, Option<u32>)>,
    },
    /// Guarding the taken arm under the complement; at `until`, optionally
    /// skip the arm's trailing unconditional jump back to `skip_to`.
    GuardTaken {
        pred: PredReg,
        negated: bool,
        /// See [`DhpState::GuardFall::cond`].
        cond: bool,
        until: u32,
        skip_to: Option<u32>,
    },
}

/// Front-end mode of Fig. 8.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Mode {
    Normal,
    HighConf,
    /// Low-confidence mode. For wish jumps/joins, `exit_target` is the
    /// target of the branch that caused entry (fetching it exits the mode);
    /// for wish loops, `loop_pc` identifies the loop being predicated.
    LowConf {
        exit_target: Option<u32>,
        loop_pc: Option<u32>,
    },
}

/// Branch metadata captured at fetch.
#[derive(Clone, Copy, Debug)]
struct BrMeta {
    /// Direction fetch followed (conditional branches).
    predicted_taken: bool,
    /// pc fetch continued at.
    predicted_next: u32,
    /// Hybrid predictor token (conditional branches, non-oracle).
    bp_token: Option<HybridToken>,
    /// What the direction predictor said before any wish-branch forcing.
    predictor_said_taken: bool,
    /// GHR before this branch's speculative update.
    ghr_checkpoint: u64,
    /// GHR value used to index the confidence estimator.
    conf_ghr: u64,
    /// RAS state after this branch's own push/pop.
    ras_checkpoint: RasCheckpoint,
    /// Confidence estimate for wish branches (None = not a wish branch or
    /// hardware disabled).
    conf_high: Option<bool>,
    /// Mode the front end was in when this branch was fetched (§3.5.4
    /// footnote: recovery checks the mode at fetch, not at resolution).
    fetch_mode: Mode,
    /// Specialized wish-loop predictor token, when that predictor is
    /// enabled and produced this prediction.
    loop_token: Option<LoopToken>,
    /// This branch was dynamically hammock-predicated (DHP): both arms are
    /// in the pipeline under hardware guards, so it never flushes.
    dhp: bool,
}

/// One fetched µop.
#[derive(Clone, Copy, Debug)]
struct FetchedUop {
    seq: u64,
    pc: u32,
    insn: Insn,
    info: StepInfo,
    fetch_cycle: u64,
    br: Option<BrMeta>,
    /// Guard value supplied by the predicate-dependency-elimination buffer
    /// (§3.5.3), if any.
    guard_pred_elim: Option<bool>,
    /// Hardware-injected guard from dynamic hammock predication:
    /// `(register, negated)`.
    hw_guard: Option<(PredReg, bool)>,
    /// Predicate prediction (Chuang & Calder baseline): the value this
    /// predicate-defining µop was predicted to produce (first destination).
    pred_check: Option<bool>,
}

/// Role of a ROB entry under the select-µop mechanism.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Role {
    /// The whole architectural µop (C-style, or unguarded).
    Whole,
    /// Select-µop expansion: the unguarded compute part.
    Compute,
    /// Select-µop expansion: the select merging under the predicate.
    Select,
}

#[derive(Clone, Debug)]
struct RobEntry {
    id: u64,
    f: FetchedUop,
    role: Role,
    deps: Vec<u64>,
    issued: bool,
    done: bool,
    ready_cycle: u64,
    resolved: bool,
    /// Filled at resolution for mispredicted low-confidence wish loops.
    loop_class: Option<LoopExitClass>,
    /// The branch mispredicted (recorded at resolution, consumed at retire).
    mispredicted: bool,
}

/// The simulator. Create with [`Simulator::new`], optionally preload state
/// via [`Simulator::preload_mem`]/[`Simulator::preload_reg`], then
/// [`Simulator::run`].
pub struct Simulator<'p> {
    program: &'p Program,
    cfg: MachineConfig,
    cycle: u64,
    emu: SpecEmulator,
    mem: MemoryHierarchy,
    bp: HybridPredictor,
    btb: Btb,
    ras: ReturnAddressStack,
    itc: IndirectTargetCache,
    jrs: JrsConfidence,
    loop_pred: Option<LoopPredictor>,
    // Fetch state.
    fetch_pc: u32,
    fetch_stall_until: u64,
    /// Why `fetch_stall_until` was last armed (cycle accounting).
    fetch_stall_reason: StallReason,
    fetch_blocked: bool,
    fetch_line: Option<u64>,
    /// Cycle of the most recent pipeline flush (cycle accounting: idle
    /// cycles inside the refill shadow are charged to `flush_recovery`).
    last_flush_cycle: Option<u64>,
    /// Set by `retire_entry` when a useful (non-overhead) µop retires in
    /// the current cycle.
    cyc_retired_useful: bool,
    /// Set by `retire_entry` when a guard-false µop retires in the
    /// current cycle.
    cyc_retired_guard_false: bool,
    mode: Mode,
    /// §3.5.3 buffer: predicate register → predicted value.
    pred_elim: HashMap<u8, bool>,
    /// Decode-time cmp2 pairing: reg → complement partner.
    cmp2_partner: HashMap<u8, u8>,
    /// §3.5.4 buffer: static wish-loop pc → (last predicted direction, seq).
    loop_last_pred: HashMap<u32, (bool, u64)>,
    dhp: DhpState,
    /// Per-PC two-bit counters for the predicate-prediction baseline.
    pred_value_pht: HashMap<u32, u8>,
    /// The confidence estimator's own history register: resolved outcomes
    /// of retired wish branches. Using non-speculative outcome history
    /// (rather than the fetch-direction GHR, which contains forced
    /// not-taken bits) keeps confidence contexts stable — our "modified
    /// JRS" (§3.5.5).
    conf_history: u64,
    next_seq: u64,
    next_rob_id: u64,
    fe_queue: VecDeque<FetchedUop>,
    rob: VecDeque<RobEntry>,
    gpr_prod: [Option<u64>; NUM_GPRS],
    pred_prod: [Option<u64>; NUM_PREDS],
    stats: SimStats,
    halted: bool,
    trace: Option<Vec<crate::trace::TraceEvent>>,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator over `program` with cold predictors and caches.
    #[must_use]
    pub fn new(program: &'p Program, cfg: MachineConfig) -> Simulator<'p> {
        let mem = MemoryHierarchy::new(cfg.mem);
        let bp = HybridPredictor::new(cfg.bpred);
        let btb = Btb::new(cfg.btb);
        let jrs = JrsConfidence::new(cfg.jrs);
        let loop_pred = cfg.wish_loop_predictor.map(LoopPredictor::new);
        Simulator {
            fetch_pc: program.entry(),
            program,
            cycle: 0,
            emu: SpecEmulator::new(),
            mem,
            bp,
            btb,
            ras: ReturnAddressStack::new(),
            itc: IndirectTargetCache::new(IndirectConfig::default()),
            jrs,
            loop_pred,
            fetch_stall_until: 0,
            fetch_stall_reason: StallReason::Redirect,
            fetch_blocked: false,
            fetch_line: None,
            last_flush_cycle: None,
            cyc_retired_useful: false,
            cyc_retired_guard_false: false,
            mode: Mode::Normal,
            pred_elim: HashMap::new(),
            cmp2_partner: HashMap::new(),
            loop_last_pred: HashMap::new(),
            dhp: DhpState::Off,
            pred_value_pht: HashMap::new(),
            conf_history: 0,
            next_seq: 1,
            next_rob_id: 1,
            fe_queue: VecDeque::new(),
            rob: VecDeque::new(),
            gpr_prod: [None; NUM_GPRS],
            pred_prod: [None; NUM_PREDS],
            stats: SimStats::default(),
            halted: false,
            trace: None,
            cfg,
        }
    }

    /// Enables pipeline event tracing (see [`crate::trace`]). Call before
    /// [`Simulator::run`]; collect the events with
    /// [`Simulator::take_trace`]. Tracing does not change timing.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the collected trace (empty if tracing was never enabled).
    pub fn take_trace(&mut self) -> Vec<crate::trace::TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    fn trace_event(
        &mut self,
        kind: crate::trace::TraceKind,
        seq: u64,
        pc: u32,
        insn: &Insn,
        extra: u64,
    ) {
        let cycle = self.cycle;
        if let Some(t) = self.trace.as_mut() {
            t.push(crate::trace::TraceEvent {
                cycle,
                kind,
                seq,
                pc,
                disasm: insn.to_string(),
                extra,
            });
        }
    }

    /// Preloads a data-memory word (program input).
    pub fn preload_mem(&mut self, addr: u64, value: i64) {
        self.emu.mem.insert(addr, value);
    }

    /// Preloads a general register (program input).
    pub fn preload_reg(&mut self, reg: Gpr, value: i64) {
        self.emu.regs[reg.index()] = value;
    }

    /// Runs to `halt` retirement.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimitExceeded`] if the configured cycle
    /// budget runs out (runaway program or configuration bug).
    pub fn run(&mut self) -> Result<SimResult, SimError> {
        while !self.halted {
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::CycleLimitExceeded {
                    limit: self.cfg.max_cycles,
                });
            }
            // Resolve completions first so a branch that finished executing
            // this cycle can retire this cycle (otherwise every branch that
            // reaches the ROB head right after completing would lose a
            // cycle, throttling retirement in window-full phases).
            self.resolve_branches();
            let retired_before = self.stats.retired_uops;
            self.cyc_retired_useful = false;
            self.cyc_retired_guard_false = false;
            self.retire();
            let retired_any = self.stats.retired_uops != retired_before;
            if !retired_any {
                self.stats.retire_idle_cycles += 1;
            }
            if self.halted {
                // The halt-retiring iteration does not increment `cycle`,
                // so it is deliberately left out of the accounting.
                break;
            }
            self.issue();
            let rob_before = self.rob.len();
            self.dispatch();
            if self.rob.len() == rob_before {
                self.stats.dispatch_idle_cycles += 1;
            }
            let fetched_before = self.stats.fetched_uops;
            self.fetch();
            if self.stats.fetched_uops == fetched_before {
                self.stats.fetch_idle_cycles += 1;
                self.account_fetch_idle();
            }
            // Attribute this cycle to exactly one cause, immediately before
            // the cycle counter advances — this placement makes the
            // `cycle_accounting.total() == cycles` invariant structural.
            self.account_cycle(retired_any);
            self.cycle += 1;
        }
        self.stats.cycles = self.cycle;
        let (ic, l1, l2) = self.mem.stats();
        self.stats.icache = ic;
        self.stats.l1d = l1;
        self.stats.l2 = l2;
        Ok(SimResult {
            stats: self.stats.clone(),
            final_regs: self.emu.regs,
            final_preds: self.emu.preds,
            final_mem: self.emu.mem.iter().map(|(&k, &v)| (k, v)).collect(),
        })
    }

    // ------------------------------------------------------ cycle accounting

    /// Splits a zero-fetch cycle by cause (`SimStats::fetch_idle_*`). The
    /// four split counters always sum to `fetch_idle_cycles`.
    fn account_fetch_idle(&mut self) {
        if self.fetch_blocked {
            self.stats.fetch_idle_blocked += 1;
        } else if self.cycle < self.fetch_stall_until {
            match self.fetch_stall_reason {
                StallReason::IMiss => self.stats.fetch_idle_imiss += 1,
                StallReason::Redirect => self.stats.fetch_idle_redirect += 1,
            }
        } else if self.fe_queue.len() >= self.fetch_queue_cap() {
            self.stats.fetch_idle_queue_full += 1;
        } else {
            // An I-miss stall armed during this cycle's own fetch attempt
            // lands in the branch above; anything left is a same-cycle
            // redirect bubble.
            self.stats.fetch_idle_redirect += 1;
        }
    }

    /// Charges the current cycle to exactly one [`CycleAccounting`]
    /// category (top-down: what retired, else why nothing did).
    fn account_cycle(&mut self, retired_any: bool) {
        let acc = &mut self.stats.cycle_accounting;
        if retired_any {
            if self.cyc_retired_useful {
                acc.useful_retire += 1;
            } else if self.cyc_retired_guard_false {
                acc.guard_false_retire += 1;
            } else {
                acc.select_uop_retire += 1;
            }
            return;
        }
        if !self.rob.is_empty() {
            // Something is in flight but the head cannot retire yet.
            if self.rob.len() >= self.cfg.rob_size {
                acc.rob_stall += 1;
            } else {
                acc.exec_wait += 1;
            }
            return;
        }
        // Empty window: the front end is the bottleneck.
        let in_flush_shadow = self
            .last_flush_cycle
            .is_some_and(|c| self.cycle <= c + self.cfg.pipeline_depth + 1);
        if in_flush_shadow {
            acc.flush_recovery += 1;
        } else if self.cycle < self.fetch_stall_until
            && self.fetch_stall_reason == StallReason::IMiss
            && !self.fetch_blocked
        {
            acc.fetch_imiss += 1;
        } else if !self.fe_queue.is_empty() || self.fetch_blocked {
            acc.frontend_fill += 1;
        } else {
            acc.fetch_redirect += 1;
        }
    }

    fn fetch_queue_cap(&self) -> usize {
        self.cfg.fetch_width * (self.cfg.pipeline_depth as usize + 2)
    }

    /// Per-PC hot-site row (created on first touch).
    fn site(&mut self, pc: u32) -> &mut HotSiteCounts {
        self.stats.hot_sites.entry(pc).or_default()
    }

    // ----------------------------------------------------------------- retire

    fn retire(&mut self) {
        let mut retired = 0;
        while retired < self.cfg.retire_width {
            let Some(head) = self.rob.front() else { break };
            if !head.done || head.ready_cycle > self.cycle {
                break;
            }
            if head.f.insn.is_branch() && !head.resolved {
                break;
            }
            let entry = self.rob.pop_front().expect("checked non-empty");
            retired += 1;
            self.retire_entry(&entry);
            if self.halted {
                return;
            }
        }
    }

    fn retire_entry(&mut self, e: &RobEntry) {
        if self.trace.is_some() {
            self.trace_event(crate::trace::TraceKind::Retire, e.f.seq, e.f.pc, &e.f.insn, 0);
        }
        self.stats.retired_uops += 1;
        if e.role == Role::Select {
            self.stats.retired_select_uops += 1;
        }
        let guard_false = e.role != Role::Compute
            && !e.f.info.guard_true
            && (e.f.insn.guard.is_some() || e.f.hw_guard.is_some());
        if guard_false {
            self.stats.retired_guard_false += 1;
            self.site(e.f.pc).guard_false_uops += 1;
            self.cyc_retired_guard_false = true;
        } else if e.role != Role::Select {
            // Neither predication overhead nor select-µop overhead.
            self.cyc_retired_useful = true;
        }
        // Clear rename-map references to this entry.
        for m in self.gpr_prod.iter_mut() {
            if *m == Some(e.id) {
                *m = None;
            }
        }
        for m in self.pred_prod.iter_mut() {
            if *m == Some(e.id) {
                *m = None;
            }
        }
        self.emu.commit_through(e.f.seq);

        if let InsnKind::Halt = e.f.insn.kind {
            self.halted = true;
            return;
        }

        // Predicate-prediction training.
        if e.f.pred_check.is_some() {
            self.stats.pred_value_predictions += 1;
            if let Some(actual) = e.f.info.pred_values[0] {
                let c = self.pred_value_pht.entry(e.f.pc).or_insert(2);
                if actual {
                    *c = (*c + 1).min(3);
                } else {
                    *c = c.saturating_sub(1);
                }
            }
        }

        // Branch bookkeeping & trainer updates happen at retirement.
        if e.role != Role::Whole || !e.f.insn.is_branch() {
            return;
        }
        let Some(br) = e.f.br else { return };
        let insn = e.f.insn;
        match insn.kind {
            InsnKind::Branch {
                kind: BranchKind::Cond { .. },
                ..
            } => {
                self.stats.retired_cond_branches += 1;
                let actual = e.f.info.actual_taken;
                if let Some(token) = br.bp_token {
                    self.bp.update(e.f.pc, &token, actual);
                }
                if e.mispredicted {
                    self.stats.retired_mispredicted += 1;
                }
                if let Some(conf_high) = br.conf_high {
                    // Dedicated confidence estimator training (wish
                    // branches, and DHP-eligible branches when DHP is on):
                    // "correct" means the *predictor* (not the forced
                    // direction) would have been right.
                    let predictor_correct = br.predictor_said_taken == actual;
                    if !self.cfg.oracles.perfect_confidence {
                        self.jrs.update(e.f.pc, br.conf_ghr, predictor_correct);
                    }
                    self.conf_history = (self.conf_history << 1) | u64::from(actual);
                    let counts: Option<&mut WishClassCounts> = match insn.wish {
                        Some(WishType::Jump) => Some(&mut self.stats.wish_jumps),
                        Some(WishType::Join) => Some(&mut self.stats.wish_joins),
                        Some(WishType::Loop) => Some(&mut self.stats.wish_loops),
                        None => None, // DHP branch
                    };
                    if let Some(counts) = counts {
                        match (conf_high, predictor_correct) {
                            (true, true) => counts.high_correct += 1,
                            (true, false) => counts.high_mispredicted += 1,
                            (false, true) => counts.low_correct += 1,
                            (false, false) => counts.low_mispredicted += 1,
                        }
                    }
                    match e.loop_class {
                        Some(LoopExitClass::EarlyExit) => self.stats.loop_early_exits += 1,
                        Some(LoopExitClass::LateExit) => self.stats.loop_late_exits += 1,
                        Some(LoopExitClass::NoExit) => self.stats.loop_no_exits += 1,
                        None => {}
                    }
                }
                if insn.wish == Some(WishType::Loop) {
                    if let (Some(lp), Some(ltok)) = (self.loop_pred.as_mut(), br.loop_token) {
                        lp.update(e.f.pc, &ltok, actual);
                    }
                }
                // Drop the front-end loop buffer entry once the loop branch
                // retires ("fetched but not yet retired", §3.5.4).
                if insn.wish == Some(WishType::Loop) {
                    if let Some(&(_, seq)) = self.loop_last_pred.get(&e.f.pc) {
                        if seq == e.f.seq {
                            self.loop_last_pred.remove(&e.f.pc);
                        }
                    }
                }
            }
            InsnKind::Branch {
                kind: BranchKind::Indirect { .. },
                ..
            } => {
                self.itc
                    .update(e.f.pc, br.ghr_checkpoint, e.f.info.actual_next);
                if e.mispredicted {
                    self.stats.retired_mispredicted += 1;
                }
            }
            _ => {
                if e.mispredicted {
                    self.stats.retired_mispredicted += 1;
                }
            }
        }
    }

    // ---------------------------------------------------------- resolution

    fn resolve_branches(&mut self) {
        // Oldest-first; a flush truncates everything younger, so the scan
        // restarts after each flush.
        'outer: loop {
            for idx in 0..self.rob.len() {
                let e = &self.rob[idx];
                if e.resolved
                    || !e.done
                    || e.ready_cycle > self.cycle
                    || e.role != Role::Whole
                    || !(e.f.insn.is_branch() || e.f.pred_check.is_some())
                {
                    continue;
                }
                let flushed = if e.f.pred_check.is_some() {
                    self.resolve_pred_check(idx)
                } else {
                    self.resolve_one(idx)
                };
                if flushed {
                    continue 'outer;
                }
            }
            break;
        }
    }

    /// Verifies a predicted predicate definition; returns whether it
    /// flushed (the definition itself is correct — only its consumers used
    /// the predicted value, so fetch resumes right after it).
    fn resolve_pred_check(&mut self, idx: usize) -> bool {
        let e = &mut self.rob[idx];
        e.resolved = true;
        let predicted = e.f.pred_check.expect("caller checked");
        // Guard-false definitions keep their old value; treat as correct
        // (consumers of the old value waited on the older producer).
        let Some(actual) = e.f.info.pred_values[0] else {
            return false;
        };
        if actual == predicted {
            return false;
        }
        e.mispredicted = true;
        let site_pc = e.f.pc;
        self.stats.pred_value_mispredictions += 1;
        self.stats.flushes += 1;
        self.site(site_pc).flushes += 1;
        self.flush_after(idx, site_pc + 1);
        true
    }

    /// Resolves the branch at ROB index `idx`; returns whether it flushed.
    fn resolve_one(&mut self, idx: usize) -> bool {
        let e = &mut self.rob[idx];
        e.resolved = true;
        let br = e.f.br.expect("branches always carry metadata");
        let actual_next = e.f.info.actual_next;
        let mispredicted = br.predicted_next != actual_next;
        e.mispredicted = mispredicted;
        if !mispredicted {
            return false;
        }
        let insn = e.f.insn;
        let site_pc = e.f.pc;
        let is_wish = insn.is_wish_branch() && self.cfg.wish_enabled;
        let fetched_low_conf = matches!(br.fetch_mode, Mode::LowConf { .. });

        // DHP branches never flush: both arms are in the pipeline under
        // injected guards, so the fetched path is architecturally complete
        // either way.
        if br.dhp {
            self.stats.flushes_avoided += 1;
            self.stats.dhp_flushes_avoided += 1;
            self.site(site_pc).flushes_avoided += 1;
            return false;
        }
        // §3.5.4: decide whether this misprediction flushes.
        let mut flush = true;
        if is_wish && fetched_low_conf {
            match insn.wish.expect("is_wish") {
                WishType::Jump | WishType::Join => {
                    // Low-confidence wish jumps/joins never flush: both
                    // paths are predicated, the fetched fall-through path is
                    // architecturally complete.
                    flush = false;
                }
                WishType::Loop => {
                    let actual_taken = e.f.info.actual_taken;
                    if actual_taken {
                        // Early-exit: the front end left the loop too soon.
                        e.loop_class = Some(LoopExitClass::EarlyExit);
                    } else {
                        // Over-iteration: late-exit vs no-exit via the
                        // front-end last-prediction buffer.
                        let last = self.loop_last_pred.get(&e.f.pc).copied();
                        match last {
                            Some((false, _)) => {
                                e.loop_class = Some(LoopExitClass::LateExit);
                                flush = false;
                            }
                            _ => {
                                e.loop_class = Some(LoopExitClass::NoExit);
                            }
                        }
                    }
                }
            }
        }
        if !flush {
            self.stats.flushes_avoided += 1;
            self.site(site_pc).flushes_avoided += 1;
            return false;
        }
        self.stats.flushes += 1;
        self.site(site_pc).flushes += 1;
        self.flush_after(idx, actual_next);
        true
    }

    fn flush_after(&mut self, idx: usize, resume_pc: u32) {
        let e = &self.rob[idx];
        let seq = e.f.seq;
        let flush_pc = e.f.pc;
        let br = e.f.br.expect("flush source is a branch");
        let is_cond = e.f.insn.is_conditional_branch();
        let actual_taken = e.f.info.actual_taken;

        // Squash younger ROB entries and the whole front-end queue.
        let squashed_rob = self.rob.len() - (idx + 1);
        self.rob.truncate(idx + 1);
        let squashed_total = squashed_rob as u64 + self.fe_queue.len() as u64;
        self.stats.squashed_uops += squashed_total;
        self.fe_queue.clear();
        if self.trace.is_some() {
            let (seq, pc, insn) = {
                let e = &self.rob[idx];
                (e.f.seq, e.f.pc, e.f.insn)
            };
            self.trace_event(crate::trace::TraceKind::Flush, seq, pc, &insn, squashed_total);
        }
        // Keep ROB ids contiguous (dep lookups index by id − front.id):
        // squashed ids are recycled — nothing can reference them, since
        // surviving entries only depend on older ids and the rename maps
        // are rebuilt below.
        self.next_rob_id = self.rob.back().map_or(self.next_rob_id, |e| e.id + 1);

        // Rebuild rename maps from the surviving entries.
        self.gpr_prod = [None; NUM_GPRS];
        self.pred_prod = [None; NUM_PREDS];
        let entries: Vec<(u64, Insn, Role, bool)> = self
            .rob
            .iter()
            .map(|e| (e.id, e.f.insn, e.role, e.f.insn.is_branch()))
            .collect();
        for (id, insn, role, _) in entries {
            if role == Role::Compute {
                continue; // temps are invisible to the rename map
            }
            if let Some(d) = insn.def_gpr() {
                self.gpr_prod[d.index()] = Some(id);
            }
            for p in insn.def_preds().into_iter().flatten() {
                if !p.is_hardwired_true() {
                    self.pred_prod[p.index()] = Some(id);
                }
            }
        }

        // Roll the speculative world back to just after the branch.
        self.emu.rollback_after(seq);
        self.ras.restore(&br.ras_checkpoint);
        if is_cond {
            self.bp.restore_ghr(br.ghr_checkpoint, actual_taken);
        } else {
            // Non-conditional branches never entered the GHR.
            self.bp.set_ghr(br.ghr_checkpoint);
        }
        // Invalidate speculative front-end structures (§3.5.3: the buffer
        // is reset on a branch misprediction).
        self.pred_elim.clear();
        self.cmp2_partner.clear();
        self.mode = Mode::Normal;
        self.dhp = DhpState::Off;
        self.loop_last_pred.retain(|_, &mut (_, s)| s <= seq);
        if let (Some(lp), Some(ltok)) = (self.loop_pred.as_mut(), br.loop_token) {
            lp.repair(flush_pc, &ltok, actual_taken);
        }

        // Redirect fetch.
        self.fetch_pc = resume_pc;
        self.fetch_blocked = false;
        self.fetch_line = None;
        self.fetch_stall_until = self.cycle + 1;
        self.fetch_stall_reason = StallReason::Redirect;
        self.last_flush_cycle = Some(self.cycle);
    }

    // -------------------------------------------------------------- issue

    fn dep_ready(&self, dep: u64) -> bool {
        let Some(front) = self.rob.front() else {
            return true;
        };
        if dep < front.id {
            return true; // producer retired
        }
        let idx = (dep - front.id) as usize;
        match self.rob.get(idx) {
            Some(p) => p.done && p.ready_cycle <= self.cycle,
            None => true,
        }
    }

    fn issue(&mut self) {
        // One pass to find the oldest not-yet-executed store (for
        // conservative load/store ordering).
        let mut oldest_pending_store: Option<u64> = None;
        for e in &self.rob {
            if e.f.insn.is_mem()
                && matches!(e.f.insn.kind, InsnKind::Store { .. })
                && !(e.done && e.ready_cycle <= self.cycle)
            {
                oldest_pending_store = Some(e.id);
                break;
            }
        }

        let mut issued = 0;
        for idx in 0..self.rob.len() {
            if issued >= self.cfg.issue_width {
                break;
            }
            let e = &self.rob[idx];
            if e.issued {
                continue;
            }
            if !e.deps.iter().all(|&d| self.dep_ready(d)) {
                continue;
            }
            let is_load = matches!(e.f.insn.kind, InsnKind::Load { .. });
            if is_load {
                if let Some(limit) = oldest_pending_store {
                    if e.id > limit {
                        continue; // wait for older stores to execute
                    }
                }
            }
            let lat = self.exec_latency(idx);
            if self.trace.is_some() {
                let (seq, pc, insn) = {
                    let e = &self.rob[idx];
                    (e.f.seq, e.f.pc, e.f.insn)
                };
                self.trace_event(crate::trace::TraceKind::Issue, seq, pc, &insn, self.cycle + lat);
            }
            let e = &mut self.rob[idx];
            e.issued = true;
            e.done = true;
            e.ready_cycle = self.cycle + lat;
            issued += 1;
        }
    }

    fn exec_latency(&mut self, idx: usize) -> u64 {
        let e = &self.rob[idx];
        let guard_true = e.f.info.guard_true;
        let role = e.role;
        match e.f.insn.kind {
            InsnKind::Alu { op, .. } => match op {
                wishbranch_isa::AluOp::Mul => self.cfg.mul_latency,
                wishbranch_isa::AluOp::Div => self.cfg.div_latency,
                _ => 1,
            },
            InsnKind::Load { .. } => {
                // C-style guard-false loads are register moves; the
                // select-µop compute part always accesses the cache.
                let accesses_mem = match role {
                    Role::Whole => guard_true,
                    Role::Compute => true,
                    Role::Select => false,
                };
                if accesses_mem {
                    if let Some(addr) = e.f.info.mem_addr {
                        return 1 + self.mem.data_access_at(addr, false, self.cycle);
                    }
                }
                1
            }
            InsnKind::Store { .. } => {
                if guard_true && role != Role::Select {
                    if let Some(addr) = e.f.info.mem_addr {
                        self.mem.data_access_at(addr, true, self.cycle);
                    }
                }
                1
            }
            _ => 1,
        }
    }

    // ----------------------------------------------------------- dispatch

    fn dispatch(&mut self) {
        let mut dispatched = 0;
        while dispatched < self.cfg.issue_width {
            let Some(front) = self.fe_queue.front() else { break };
            if front.fetch_cycle + self.cfg.pipeline_depth > self.cycle {
                break;
            }
            let needed = self.rob_slots_needed(front);
            if self.rob.len() + needed > self.cfg.rob_size {
                break;
            }
            let f = self.fe_queue.pop_front().expect("checked non-empty");
            self.rename_into_rob(f);
            dispatched += needed;
        }
    }

    fn rob_slots_needed(&self, f: &FetchedUop) -> usize {
        if self.cfg.pred_mechanism == PredMechanism::SelectUop
            && f.insn.guard.is_some()
            && f.guard_pred_elim.is_none()
            && !f.insn.is_branch()
            && (f.insn.def_gpr().is_some() || f.insn.def_preds()[0].is_some())
        {
            2
        } else {
            1
        }
    }

    fn push_rob(&mut self, f: FetchedUop, role: Role, deps: Vec<u64>) -> u64 {
        if self.trace.is_some() {
            self.trace_event(crate::trace::TraceKind::Dispatch, f.seq, f.pc, &f.insn, 0);
        }
        let id = self.next_rob_id;
        self.next_rob_id += 1;
        self.rob.push_back(RobEntry {
            id,
            f,
            role,
            deps,
            issued: false,
            done: false,
            ready_cycle: 0,
            resolved: false,
            loop_class: None,
            mispredicted: false,
        });
        id
    }

    fn guard_dep(&self, f: &FetchedUop, oracles: &OracleConfig) -> GuardPlan {
        let Some(g) = f.insn.guard else {
            return GuardPlan::None;
        };
        if oracles.no_pred_dependencies {
            return GuardPlan::Known(f.info.guard_true);
        }
        if let Some(v) = f.guard_pred_elim {
            return GuardPlan::Known(v);
        }
        match self.pred_prod[g.index()] {
            Some(id) => {
                // Predicate-prediction baseline: if the producer's value was
                // predicted at fetch, consumers run with the predicted value
                // instead of waiting (verified at the producer's execution).
                if self.cfg.predicate_prediction {
                    if let Some(front) = self.rob.front() {
                        if id >= front.id {
                            let idx = (id - front.id) as usize;
                            assert!(idx < self.rob.len(), "producer id {id} front {} len {}", front.id, self.rob.len());
                            let p = &self.rob[idx];
                            if let Some(predicted) = p.f.pred_check {
                                let defs = p.f.insn.def_preds();
                                if defs[0] == Some(g) {
                                    return GuardPlan::Known(predicted);
                                }
                                if defs[1] == Some(g) {
                                    return GuardPlan::Known(!predicted);
                                }
                            }
                        }
                    }
                }
                GuardPlan::Wait(id)
            }
            None => GuardPlan::Ready,
        }
    }

    fn rename_into_rob(&mut self, f: FetchedUop) {
        let oracles = self.cfg.oracles;
        let insn = f.insn;
        let select_expand = self.rob_slots_needed(&f) == 2;
        let guard = self.guard_dep(&f, &oracles);

        // Data-source dependences (registers + predicate sources).
        let mut src_deps: Vec<u64> = Vec::new();
        for r in insn.gpr_srcs().into_iter().flatten() {
            if let Some(id) = self.gpr_prod[r.index()] {
                src_deps.push(id);
            }
        }
        for p in insn.pred_srcs().into_iter().flatten() {
            // §3.5.3: the elimination buffer satisfies predicate *data*
            // sources of non-branch µops too (e.g. the re-ANDing `pand`s in
            // predicated arms) — but never a branch's own condition, which
            // must still be verified.
            let eliminated = !insn.is_branch()
                && self.pred_elim_active()
                && self.pred_elim.contains_key(&(p.index() as u8));
            if oracles.no_pred_dependencies && !insn.is_branch() {
                continue;
            }
            if eliminated {
                continue;
            }
            if let Some(id) = self.pred_prod[p.index()] {
                src_deps.push(id);
            }
        }

        // Hardware-injected (DHP) guard dependence.
        let mut hw_guard_deps: Vec<u64> = Vec::new();
        if let Some((p, _)) = f.hw_guard {
            if !oracles.no_pred_dependencies {
                if let Some(id) = self.pred_prod[p.index()] {
                    hw_guard_deps.push(id);
                }
            }
        }

        // Old-destination dependences (C-style reads the old value).
        let mut old_dest_deps: Vec<u64> = Vec::new();
        if (insn.guard.is_some() || f.hw_guard.is_some()) && !oracles.no_pred_dependencies {
            if let Some(d) = insn.def_gpr() {
                if let Some(id) = self.gpr_prod[d.index()] {
                    old_dest_deps.push(id);
                }
            }
            for p in insn.def_preds().into_iter().flatten() {
                if let Some(id) = self.pred_prod[p.index()] {
                    old_dest_deps.push(id);
                }
            }
        }

        // A µop whose guard is *known* false at rename (oracle knob or the
        // §3.5.3 elimination buffer) is a pure NOP: it must not become the
        // rename-map producer of its destinations, or consumers would see
        // the old value re-timestamped as fresh (breaking — or worse,
        // artificially shortening — accumulator dependence chains).
        let known_false = matches!(guard, GuardPlan::Known(false));
        let update_maps = |sim: &mut Self, id: u64| {
            if known_false {
                return;
            }
            if let Some(d) = insn.def_gpr() {
                sim.gpr_prod[d.index()] = Some(id);
            }
            for p in insn.def_preds().into_iter().flatten() {
                if !p.is_hardwired_true() {
                    sim.pred_prod[p.index()] = Some(id);
                }
            }
        };

        if select_expand {
            // Compute part: sources only, no guard, no old destination.
            let compute_id = self.push_rob(f, Role::Compute, src_deps);
            // Select part: compute result + guard + old destination.
            let mut deps = vec![compute_id];
            match guard {
                GuardPlan::Wait(id) => deps.push(id),
                GuardPlan::None | GuardPlan::Ready | GuardPlan::Known(_) => {}
            }
            deps.extend(old_dest_deps);
            deps.dedup();
            let select_id = self.push_rob(f, Role::Select, deps);
            update_maps(self, select_id);
            return;
        }

        // C-style single µop (or a non-expandable guarded store/branch).
        let mut deps = hw_guard_deps;
        match guard {
            GuardPlan::Wait(id) => {
                deps.push(id);
                deps.extend(src_deps);
                deps.extend(old_dest_deps);
            }
            GuardPlan::Known(true) => deps.extend(src_deps),
            GuardPlan::Known(false) => {
                if !oracles.no_pred_dependencies {
                    deps.extend(old_dest_deps);
                }
            }
            GuardPlan::None | GuardPlan::Ready => {
                deps.extend(src_deps);
                deps.extend(old_dest_deps);
                if matches!(guard, GuardPlan::Ready) {
                    // guard value architecturally ready (producer retired)
                }
            }
        }
        deps.sort_unstable();
        deps.dedup();
        let id = self.push_rob(f, Role::Whole, deps);
        update_maps(self, id);
    }

    fn pred_elim_active(&self) -> bool {
        matches!(self.mode, Mode::HighConf) && !self.pred_elim.is_empty()
    }

    // -------------------------------------------------------------- fetch

    fn fetch(&mut self) {
        if self.fetch_blocked || self.cycle < self.fetch_stall_until {
            return;
        }
        let queue_cap = self.cfg.fetch_width * (self.cfg.pipeline_depth as usize + 2);
        let mut budget = self.cfg.fetch_width;
        let mut cond_budget = self.cfg.max_cond_branches_per_cycle;
        while budget > 0 && self.fe_queue.len() < queue_cap {
            // Mode exit on reaching the low-confidence region's join target.
            if let Mode::LowConf {
                exit_target: Some(t),
                ..
            } = self.mode
            {
                if self.fetch_pc == t {
                    self.mode = Mode::Normal;
                }
            }
            let Some(&insn) = self.program.get(self.fetch_pc) else {
                // Wrong-path fetch escaped the image; wait for the flush.
                self.fetch_blocked = true;
                return;
            };
            // I-cache.
            let addr = insn_addr(self.fetch_pc);
            let line = addr / self.cfg.mem.icache.line_bytes as u64;
            if self.fetch_line != Some(line) {
                let lat = self.mem.fetch_access_at(addr, self.cycle);
                self.fetch_line = Some(line);
                if lat > self.cfg.mem.icache.latency {
                    self.fetch_stall_until = self.cycle + lat;
                    self.fetch_stall_reason = StallReason::IMiss;
                    return;
                }
            }

            let pc = self.fetch_pc;
            // Dynamic hammock predication: advance the guard-injection
            // state machine before fetching this µop.
            match self.dhp {
                DhpState::GuardFall {
                    pred,
                    negated,
                    cond,
                    until,
                    then,
                } => {
                    if pc >= until {
                        match then {
                            Some((taken_start, taken_until, skip_to)) => {
                                // Redirect into the taken arm under the
                                // complement guard.
                                self.fetch_pc = taken_start;
                                self.dhp = DhpState::GuardTaken {
                                    pred,
                                    negated: !negated,
                                    cond,
                                    until: taken_until,
                                    skip_to,
                                };
                                continue;
                            }
                            None => self.dhp = DhpState::Off,
                        }
                    }
                }
                DhpState::GuardTaken { until, skip_to, .. } => {
                    if pc >= until {
                        self.dhp = DhpState::Off;
                        if let Some(j) = skip_to {
                            // Hardware squashes the arm's trailing jump and
                            // resumes at the join.
                            self.fetch_pc = j;
                            continue;
                        }
                    }
                }
                DhpState::Off => {}
            }
            if insn.is_conditional_branch() {
                if cond_budget == 0 {
                    return; // next cycle
                }
                cond_budget -= 1;
            }
            let fetched = self.fetch_one(pc, insn);
            budget -= 1;
            let taken_redirect = fetched.info.followed_next != pc + 1;
            let halted_here = matches!(insn.kind, InsnKind::Halt);
            self.fetch_pc = fetched.info.followed_next;

            // NO-FETCH oracle: guard-false µops vanish before taking any
            // bandwidth (they also don't count against the fetch budget).
            let skip = self.cfg.oracles.no_false_predicate_fetch
                && !fetched.info.guard_true
                && insn.guard.is_some()
                && !insn.is_branch();
            if skip {
                budget += 1;
                self.stats.fetched_uops += 1;
                continue;
            }
            self.stats.fetched_uops += 1;
            self.fe_queue.push_back(fetched);

            if halted_here {
                self.fetch_blocked = true;
                return;
            }
            if taken_redirect {
                // Fetch ends at the first taken branch (Table 2).
                return;
            }
        }
    }

    /// Processes one µop at fetch: predictions, wish-branch mode logic,
    /// speculative emulation, front-end table updates.
    fn fetch_one(&mut self, pc: u32, insn: Insn) -> FetchedUop {
        let seq = self.next_seq;
        self.next_seq += 1;

        // Predicate-dependency elimination lookup (before this µop's own
        // writes invalidate entries).
        let guard_pred_elim = match insn.guard {
            Some(g) if self.pred_elim_active() && !insn.is_branch() => {
                self.pred_elim.get(&(g.index() as u8)).copied()
            }
            _ => None,
        };

        #[allow(unused_mut)]
        let mut br_meta: Option<BrMeta> = None;
        let mut forced_next: Option<u32> = None;

        if let InsnKind::Branch { kind, target } = insn.kind {
            let ghr_checkpoint = self.bp.ghr();
            let fetch_mode = self.mode;
            let mut meta = BrMeta {
                predicted_taken: false,
                predicted_next: pc + 1,
                bp_token: None,
                predictor_said_taken: false,
                ghr_checkpoint,
                conf_ghr: ghr_checkpoint,
                ras_checkpoint: self.ras.checkpoint(),
                conf_high: None,
                fetch_mode,
                loop_token: None,
                dhp: false,
            };
            match kind {
                BranchKind::Cond { .. } => {
                    let (dir, token) = self.predict_cond(pc, &insn, &mut meta);
                    meta.predicted_taken = dir;
                    meta.bp_token = token;
                    meta.predicted_next = if dir { target } else { pc + 1 };
                    self.bp.on_fetch_branch(dir);
                    self.btb_note(pc, BtbKind::Cond, target, insn.wish, dir);
                }
                BranchKind::Uncond => {
                    meta.predicted_taken = true;
                    meta.predicted_next = target;
                    self.btb_note(pc, BtbKind::Uncond, target, None, true);
                }
                BranchKind::Call => {
                    meta.predicted_taken = true;
                    meta.predicted_next = target;
                    self.ras.push(pc + 1);
                    meta.ras_checkpoint = self.ras.checkpoint();
                    self.btb_note(pc, BtbKind::Call, target, None, true);
                }
                BranchKind::Ret => {
                    let predicted = self
                        .ras
                        .pop()
                        .or_else(|| self.itc.predict(pc, self.bp.ghr()))
                        .unwrap_or(0);
                    meta.predicted_taken = true;
                    meta.predicted_next = predicted;
                    meta.ras_checkpoint = self.ras.checkpoint();
                    self.btb_note(pc, BtbKind::Ret, predicted, None, true);
                }
                BranchKind::Indirect { .. } => {
                    let predicted = self.itc.predict(pc, self.bp.ghr()).unwrap_or(pc + 1);
                    meta.predicted_taken = true;
                    meta.predicted_next = predicted;
                    self.btb_note(pc, BtbKind::Indirect, predicted, None, true);
                }
            }
            if self.cfg.oracles.perfect_branch_prediction {
                // PERFECT-CBP: override everything with the oracle.
                let actual = self.emu.peek_cond(&insn);
                match kind {
                    BranchKind::Cond { .. } => {
                        let t = actual.expect("cond branch peeks");
                        meta.predicted_taken = t;
                        meta.predicted_next = if t { target } else { pc + 1 };
                        meta.bp_token = None;
                        meta.conf_high = None;
                    }
                    _ => {
                        // Target oracles for ret/indirect.
                        meta.predicted_next = self.peek_target(&insn, pc);
                    }
                }
            }
            forced_next = Some(meta.predicted_next);
            br_meta = Some(meta);
        }

        // DHP: non-control µops inside an active region carry the injected
        // guard (register for dependence tracking, captured value for the
        // architectural decision).
        let (hw_guard, hw_guard_ok) = if insn.is_branch() {
            (None, None)
        } else {
            match self.dhp {
                DhpState::GuardFall {
                    pred,
                    negated,
                    cond,
                    ..
                }
                | DhpState::GuardTaken {
                    pred,
                    negated,
                    cond,
                    ..
                } => (Some((pred, negated)), Some(cond ^ negated)),
                DhpState::Off => (None, None),
            }
        };
        // Predicate prediction (Chuang & Calder baseline): predict the
        // value every predicate-defining µop will produce, and checkpoint
        // for the flush its verification may trigger.
        let mut pred_check = None;
        if self.cfg.predicate_prediction
            && insn.def_preds()[0].is_some()
            && br_meta.is_none()
        {
            let counter = *self.pred_value_pht.entry(pc).or_insert(2);
            pred_check = Some(counter >= 2);
            br_meta = Some(BrMeta {
                predicted_taken: false,
                predicted_next: pc + 1,
                bp_token: None,
                predictor_said_taken: false,
                ghr_checkpoint: self.bp.ghr(),
                conf_ghr: self.conf_history,
                ras_checkpoint: self.ras.checkpoint(),
                conf_high: None,
                fetch_mode: self.mode,
                loop_token: None,
                dhp: false,
            });
        }

        let info = self.emu.exec(seq, pc, &insn, forced_next, hw_guard_ok);

        // Front-end table maintenance after the µop is "decoded".
        self.note_pred_writes(&insn);

        if self.trace.is_some() {
            self.trace_event(crate::trace::TraceKind::Fetch, seq, pc, &insn, 0);
        }
        FetchedUop {
            seq,
            pc,
            insn,
            info,
            fetch_cycle: self.cycle,
            br: br_meta,
            guard_pred_elim,
            hw_guard,
            pred_check,
        }
    }

    /// Oracle target of a control µop (for PERFECT-CBP on ret/indirect).
    fn peek_target(&self, insn: &Insn, pc: u32) -> u32 {
        match insn.kind {
            InsnKind::Branch { kind, target } => match kind {
                BranchKind::Ret => self.emu.regs[Gpr::LINK.index()] as u32,
                BranchKind::Indirect { target: r } => self.emu.regs[r.index()] as u32,
                _ => target,
            },
            _ => pc + 1,
        }
    }

    /// Direction prediction for a conditional branch, including all wish
    /// branch mode logic (§3.1, §3.2, Table 1, Fig. 8).
    fn predict_cond(
        &mut self,
        pc: u32,
        insn: &Insn,
        meta: &mut BrMeta,
    ) -> (bool, Option<HybridToken>) {
        let (mut bp_dir, token) = self.bp.predict(pc);
        meta.predictor_said_taken = bp_dir;
        meta.conf_ghr = self.conf_history;
        let wish = insn.wish.filter(|_| self.cfg.wish_enabled);
        let Some(wtype) = wish else {
            // Dynamic hammock predication for plain conditional branches:
            // on a low-confidence prediction of an eligible hammock, force
            // not-taken, inject guards, and never flush.
            if self.cfg.dhp_enabled && self.dhp == DhpState::Off {
                if let Some(plan) = self.dhp_region(pc, insn) {
                    let low = if self.cfg.oracles.perfect_confidence {
                        let actual = self.emu.peek_cond(insn).expect("cond branch");
                        bp_dir != actual
                    } else {
                        !self.jrs.estimate(pc, self.conf_history).is_high()
                    };
                    meta.conf_high = Some(!low);
                    if low {
                        meta.dhp = true;
                        self.dhp = plan;
                        self.stats.dhp_predications += 1;
                        return (false, Some(token));
                    }
                }
            }
            return (bp_dir, Some(token));
        };
        // Specialized wish-loop predictor (§3.2 extension): overrides the
        // hybrid's direction when it has a confident trip prediction.
        if wtype == WishType::Loop {
            if let Some(lp) = self.loop_pred.as_mut() {
                let (pred, ltok) = lp.fetch_predict(pc);
                meta.loop_token = Some(ltok);
                if let Some(dir) = pred {
                    bp_dir = dir;
                    meta.predictor_said_taken = dir;
                }
            }
        }

        // Track the front-end last-prediction buffer for wish loops before
        // the direction is finalized below.
        let mut final_dir = bp_dir;

        match self.mode {
            Mode::LowConf {
                exit_target,
                loop_pc,
            } => {
                match wtype {
                    WishType::Jump | WishType::Join => {
                        // Fig. 8 has no LowConf→HighConf edge: while in
                        // low-confidence mode every wish jump/join is
                        // forced not-taken (Table 1).
                        final_dir = false;
                        meta.conf_high = Some(false);
                        // A jump fetched in low-conf mode starts its own
                        // region; keep the earlier exit target if any,
                        // otherwise adopt this branch's.
                        if exit_target.is_none() {
                            if let Some(t) = insn.direct_target() {
                                self.mode = Mode::LowConf {
                                    exit_target: Some(t),
                                    loop_pc,
                                };
                            }
                        }
                    }
                    WishType::Loop => {
                        // Predicate not predicted; direction still comes
                        // from the predictor.
                        meta.conf_high = Some(false);
                        if loop_pc == Some(pc) && !final_dir {
                            // "wish loop is exited" (Fig. 8).
                            self.mode = Mode::Normal;
                        }
                    }
                }
                // The branch operates under low-confidence mode (§3.5.4:
                // recovery checks the mode the branch was fetched *under*).
                meta.fetch_mode = Mode::LowConf {
                    exit_target,
                    loop_pc,
                };
            }
            Mode::Normal | Mode::HighConf => {
                let high = if self.cfg.oracles.perfect_confidence {
                    let actual = self.emu.peek_cond(insn).expect("cond branch");
                    bp_dir == actual
                } else {
                    self.jrs.estimate(pc, meta.conf_ghr).is_high()
                };
                meta.conf_high = Some(high);
                if high {
                    self.mode = Mode::HighConf;
                    self.install_pred_elim(insn, bp_dir);
                } else {
                    match wtype {
                        WishType::Jump | WishType::Join => {
                            final_dir = false;
                            self.mode = Mode::LowConf {
                                exit_target: insn.direct_target(),
                                loop_pc: None,
                            };
                        }
                        WishType::Loop => {
                            self.mode = Mode::LowConf {
                                exit_target: None,
                                loop_pc: Some(pc),
                            };
                        }
                    }
                }
                // A branch that causes a mode transition operates under the
                // mode it causes: a low-confidence estimate means this very
                // branch is executed in predicated fashion and must not
                // flush (§3.1).
                meta.fetch_mode = self.mode;
            }
        }
        if wtype == WishType::Loop {
            self.loop_last_pred.insert(pc, (final_dir, self.next_seq - 1));
            if matches!(self.mode, Mode::HighConf) && !final_dir {
                // Predicted loop exit in high-confidence mode: the loop is
                // done (Fig. 8's "wish loop is exited").
                self.mode = Mode::Normal;
            }
        }
        (final_dir, Some(token))
    }

    /// Installs the §3.5.3 predicate prediction for a high-confidence wish
    /// branch: the branch's own condition register gets the predicted
    /// value, and (via the decode-time cmp2 pairing table) its complement
    /// partner gets the inverse.
    fn install_pred_elim(&mut self, insn: &Insn, predicted_dir: bool) {
        let InsnKind::Branch {
            kind: BranchKind::Cond { pred, sense },
            ..
        } = insn.kind
        else {
            return;
        };
        let value = if sense { predicted_dir } else { !predicted_dir };
        self.pred_elim.insert(pred.index() as u8, value);
        if let Some(&partner) = self.cmp2_partner.get(&(pred.index() as u8)) {
            self.pred_elim.insert(partner, !value);
        }
    }

    /// Decode-time predicate bookkeeping: cmp2 pairings, and invalidation
    /// of elimination-buffer entries when their register is redefined
    /// (§3.5.3).
    fn note_pred_writes(&mut self, insn: &Insn) {
        if let InsnKind::Cmp2 { dst_t, dst_f, .. } = insn.kind {
            self.cmp2_partner
                .insert(dst_t.index() as u8, dst_f.index() as u8);
            self.cmp2_partner
                .insert(dst_f.index() as u8, dst_t.index() as u8);
        }
        for p in insn.def_preds().into_iter().flatten() {
            self.pred_elim.remove(&(p.index() as u8));
            if !matches!(insn.kind, InsnKind::Cmp2 { .. }) {
                self.cmp2_partner.remove(&(p.index() as u8));
            }
        }
        if matches!(self.mode, Mode::HighConf) && self.pred_elim.is_empty() {
            self.mode = Mode::Normal;
        }
    }

    /// Checks whether the branch at `pc` guards a DHP-eligible hammock and
    /// returns the guard-injection plan. Eligibility: forward branch, arms
    /// within `dhp_max_block` µops, arms free of control flow (hardware
    /// cannot re-converge across nested branches). Three layouts are
    /// recognized, matching what compilers actually emit:
    ///
    /// 1. skip-triangle — `br → J; B…; J:` (guard B);
    /// 2. contiguous diamond — `br → T; B…; jmp J; T: C…; J:`;
    /// 3. far-taken diamond — `br → T; B…; J: …  T: C…; jmp J` (the taken
    ///    arm laid out out-of-line, jumping back to the join).
    fn dhp_region(&self, pc: u32, insn: &Insn) -> Option<DhpState> {
        let InsnKind::Branch {
            kind: BranchKind::Cond { pred, sense },
            target,
        } = insn.kind
        else {
            return None;
        };
        let max = self.cfg.dhp_max_block;
        let straight = |lo: u32, hi: u32| {
            lo <= hi
                && hi - lo <= max
                && (lo..hi).all(|i| {
                    self.program
                        .get(i)
                        .is_some_and(|x| !x.is_branch() && !matches!(x.kind, InsnKind::Halt))
                })
        };
        if target <= pc + 1 {
            return None;
        }
        // The fall-through arm executes when the branch is NOT taken:
        // guard value = !(pred == sense)  ⇒  (pred, negated = sense).
        // Capture the condition register's architectural value now — the
        // guarded arms may redefine the register itself.
        let cond = self.emu.preds[pred.index()];
        // Layout 2: contiguous diamond (trailing jump inside the region).
        if target >= 2 && target - (pc + 1) >= 2 {
            if let Some(last) = self.program.get(target - 1) {
                if let InsnKind::Branch {
                    kind: BranchKind::Uncond,
                    target: join,
                } = last.kind
                {
                    if join > target
                        && straight(pc + 1, target - 1)
                        && straight(target, join)
                    {
                        return Some(DhpState::GuardFall {
                            pred,
                            negated: sense,
                            cond,
                            until: target - 1,
                            then: Some((target, join, None)),
                        });
                    }
                }
            }
        }
        // Layout 3: far-taken diamond. Scan the taken arm for its trailing
        // jump back into the fall-through region.
        let mut k = target;
        while k - target <= max {
            let Some(x) = self.program.get(k) else { break };
            if let InsnKind::Branch { kind, target: join } = x.kind {
                if matches!(kind, BranchKind::Uncond)
                    && join > pc
                    && join <= target
                    && straight(pc + 1, join)
                    && straight(target, k)
                {
                    return Some(DhpState::GuardFall {
                        pred,
                        negated: sense,
                        cond,
                        until: join,
                        then: Some((target, k, Some(join))),
                    });
                }
                break;
            }
            if matches!(x.kind, InsnKind::Halt) {
                break;
            }
            k += 1;
        }
        // Layout 1: skip-triangle.
        if straight(pc + 1, target) {
            return Some(DhpState::GuardFall {
                pred,
                negated: sense,
                cond,
                until: target,
                then: None,
            });
        }
        None
    }

    fn btb_note(
        &mut self,
        pc: u32,
        kind: BtbKind,
        target: u32,
        wish: Option<WishType>,
        redirects: bool,
    ) {
        let hit = self.btb.lookup(pc).is_some();
        if !hit {
            self.btb.install(pc, BtbEntry { target, kind, wish });
            if redirects {
                // Target only known after decode: charge a fetch bubble.
                self.fetch_stall_until = self.cycle + self.cfg.btb_miss_penalty;
                self.fetch_stall_reason = StallReason::Redirect;
            }
        }
    }
}

/// Why the fetch stage is stalled (`fetch_stall_until` armed).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum StallReason {
    /// I-cache miss in flight.
    IMiss,
    /// Redirect bubble: post-flush resteer or BTB-miss target bubble.
    Redirect,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum GuardPlan {
    /// Unguarded.
    None,
    /// Guarded; producer already retired (value architecturally ready).
    Ready,
    /// Guarded; wait on this ROB producer.
    Wait(u64),
    /// Guarded; value known at rename (oracle or §3.5.3 elimination).
    Known(bool),
}
