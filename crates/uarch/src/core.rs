//! The cycle-level out-of-order core.
//!
//! Per-cycle stage order: retire → branch resolution → issue/execute →
//! dispatch/rename → fetch. Fetch runs the speculative emulator
//! ([`crate::emu::SpecEmulator`]) along the predicted path; branch
//! resolution compares the predicted direction with the architectural one
//! and flushes (or, for wish branches in low-confidence mode, deliberately
//! does not flush) per §3.5.4 of the paper.
//!
//! # Hot-path organization
//!
//! The per-cycle loop is event-driven rather than scan-driven, with three
//! load-bearing structures (all asserted bit-identical to the historical
//! scan implementation by `tests/golden_figures.rs`):
//!
//! * **Pre-decoded µop cache** ([`PcInfo`], built once per program in
//!   [`Simulator::new`]): per-PC static facts — decoded source/destination
//!   registers, branch class, I-cache line, select-µop expandability, and
//!   the static DHP hammock plan — so `fetch`/`fetch_one`/`rename_into_rob`
//!   never re-derive them per dynamic instruction.
//! * **Flat state tables**: the predicate-elimination buffer, cmp2
//!   pairings, wish-loop last-prediction buffer, predicate-value PHT and
//!   per-PC hot-site counters are direct-indexed arrays (by predicate
//!   register or PC) instead of hash maps.
//! * **Wakeup lists**: `issue` pops a ready min-heap fed by completion
//!   events and per-producer waiter lists ([`WaiterList`]) instead of
//!   walking the whole ROB; `resolve_branches` walks only the in-flight
//!   unresolved branches; the oldest-unexecuted-store limit comes from a
//!   store queue. Dependence lists live in a reused scratch buffer during
//!   rename and become per-entry counters — no per-µop allocation.

use crate::config::{MachineConfig, OracleConfig, PredMechanism};
use crate::decode::{DecodedProgram, PcInfo};
use crate::emu::{SpecEmulator, StepInfo};
use crate::stats::{HotSiteCounts, LoopExitClass, SimStats, WishClassCounts};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::error::Error;
use std::fmt;
use wishbranch_bpred::{
    Btb, BtbEntry, BtbKind, HybridPredictor, HybridToken, IndirectConfig, IndirectTargetCache,
    JrsConfidence, LoopPredictor, LoopToken, RasCheckpoint, ReturnAddressStack,
};
use wishbranch_isa::{
    insn_addr, BranchKind, Gpr, Insn, InsnKind, PredReg, Program, WishType, NUM_GPRS, NUM_PREDS,
};
use wishbranch_mem::{AccessOutcome, MemoryHierarchy, StoreOutcome};

/// Errors from [`Simulator::run`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SimError {
    /// The cycle budget was exhausted before `halt` retired.
    CycleLimitExceeded {
        /// The configured limit.
        limit: u64,
    },
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::CycleLimitExceeded { limit } => {
                write!(f, "program did not retire halt within {limit} cycles")
            }
        }
    }
}

impl Error for SimError {}

/// Outcome of a simulation.
#[derive(Clone, PartialEq, Debug)]
pub struct SimResult {
    /// All statistics.
    pub stats: SimStats,
    /// Final (retired) general registers.
    pub final_regs: [i64; NUM_GPRS],
    /// Final (retired) predicate registers.
    pub final_preds: [bool; NUM_PREDS],
    /// Final (retired) memory, sorted.
    pub final_mem: std::collections::BTreeMap<u64, i64>,
}

/// Dynamic-hammock-predication fetch state: which region is currently
/// being fetched under an injected guard.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum DhpState {
    Off,
    /// Guarding the fall-through arm. At `until`, either stop (triangle) or
    /// redirect into the taken arm (`then` = (taken_start, taken_until,
    /// skip_to-after-taken)).
    GuardFall {
        pred: PredReg,
        negated: bool,
        /// Architectural value of `pred` when the branch was fetched (the
        /// renamed condition real hardware would hold).
        cond: bool,
        until: u32,
        then: Option<(u32, u32, Option<u32>)>,
    },
    /// Guarding the taken arm under the complement; at `until`, optionally
    /// skip the arm's trailing unconditional jump back to `skip_to`.
    GuardTaken {
        pred: PredReg,
        negated: bool,
        /// See [`DhpState::GuardFall::cond`].
        cond: bool,
        until: u32,
        skip_to: Option<u32>,
    },
}

/// Front-end mode of Fig. 8.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Mode {
    Normal,
    HighConf,
    /// Low-confidence mode. For wish jumps/joins, `exit_target` is the
    /// target of the branch that caused entry (fetching it exits the mode);
    /// for wish loops, `loop_pc` identifies the loop being predicated.
    LowConf {
        exit_target: Option<u32>,
        loop_pc: Option<u32>,
    },
}

/// Branch metadata captured at fetch.
#[derive(Clone, Copy, Debug)]
pub(crate) struct BrMeta {
    /// Direction fetch followed (conditional branches).
    pub(crate) predicted_taken: bool,
    /// pc fetch continued at.
    pub(crate) predicted_next: u32,
    /// Hybrid predictor token (conditional branches, non-oracle).
    pub(crate) bp_token: Option<HybridToken>,
    /// What the direction predictor said before any wish-branch forcing.
    pub(crate) predictor_said_taken: bool,
    /// GHR before this branch's speculative update.
    pub(crate) ghr_checkpoint: u64,
    /// GHR value used to index the confidence estimator.
    pub(crate) conf_ghr: u64,
    /// RAS state after this branch's own push/pop.
    pub(crate) ras_checkpoint: RasCheckpoint,
    /// Confidence estimate for wish branches (None = not a wish branch or
    /// hardware disabled).
    pub(crate) conf_high: Option<bool>,
    /// Mode the front end was in when this branch was fetched (§3.5.4
    /// footnote: recovery checks the mode at fetch, not at resolution).
    pub(crate) fetch_mode: Mode,
    /// Specialized wish-loop predictor token, when that predictor is
    /// enabled and produced this prediction.
    pub(crate) loop_token: Option<LoopToken>,
    /// This branch was dynamically hammock-predicated (DHP): both arms are
    /// in the pipeline under hardware guards, so it never flushes.
    pub(crate) dhp: bool,
}

/// One fetched µop.
#[derive(Clone, Copy, Debug)]
struct FetchedUop {
    seq: u64,
    pc: u32,
    insn: Insn,
    info: StepInfo,
    fetch_cycle: u64,
    br: Option<BrMeta>,
    /// Guard value supplied by the predicate-dependency-elimination buffer
    /// (§3.5.3), if any.
    guard_pred_elim: Option<bool>,
    /// Hardware-injected guard from dynamic hammock predication:
    /// `(register, negated)`.
    hw_guard: Option<(PredReg, bool)>,
    /// Predicate prediction (Chuang & Calder baseline): the value this
    /// predicate-defining µop was predicted to produce (first destination).
    pred_check: Option<bool>,
}

/// Role of a ROB entry under the select-µop mechanism.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum Role {
    /// The whole architectural µop (C-style, or unguarded).
    Whole,
    /// Select-µop expansion: the unguarded compute part.
    Compute,
    /// Select-µop expansion: the select merging under the predicate.
    Select,
}

/// Inline capacity of a [`WaiterList`]; spills go to a pooled `Vec`.
pub(crate) const WAITERS_INLINE: usize = 4;

/// Consumers waiting on one producer's completion, in ascending ROB-id
/// order (ids only grow between flushes, and a flush truncates the tail).
/// Small-buffer inline; the rare spill vectors are recycled through
/// `Simulator::waiter_pool` across flushes so steady state allocates
/// nothing per µop.
#[derive(Clone, Debug, Default)]
pub(crate) struct WaiterList {
    pub(crate) len: u32,
    pub(crate) inline: [u64; WAITERS_INLINE],
    pub(crate) spill: Vec<u64>,
}

impl WaiterList {
    pub(crate) fn push(&mut self, id: u64) {
        let l = self.len as usize;
        if l < WAITERS_INLINE {
            self.inline[l] = id;
        } else {
            self.spill.push(id);
        }
        self.len += 1;
    }

    /// The next `push` would land in the spill vector.
    pub(crate) fn will_spill(&self) -> bool {
        self.len as usize >= WAITERS_INLINE
    }

    /// Drops waiters with id > `boundary` (flush squash). The list is
    /// ascending, so squashed ids form the tail.
    pub(crate) fn truncate_above(&mut self, boundary: u64) {
        while self.len > 0 {
            let l = (self.len - 1) as usize;
            let last = if l < WAITERS_INLINE {
                self.inline[l]
            } else {
                self.spill[l - WAITERS_INLINE]
            };
            if last <= boundary {
                break;
            }
            if l >= WAITERS_INLINE {
                self.spill.pop();
            }
            self.len -= 1;
        }
    }
}

#[derive(Clone, Debug)]
struct RobEntry {
    id: u64,
    f: FetchedUop,
    role: Role,
    /// Producers this entry still waits on (wakeup-driven; counted at
    /// dispatch, decremented by completion events and retirement).
    unready: u32,
    /// Entries to wake when this one's result becomes value-ready.
    waiters: WaiterList,
    issued: bool,
    done: bool,
    ready_cycle: u64,
    resolved: bool,
    /// Filled at resolution for mispredicted low-confidence wish loops.
    loop_class: Option<LoopExitClass>,
    /// The branch mispredicted (recorded at resolution, consumed at retire).
    mispredicted: bool,
}

/// The simulator. Create with [`Simulator::new`], optionally preload state
/// via [`Simulator::preload_mem`]/[`Simulator::preload_reg`], then
/// [`Simulator::run`].
pub struct Simulator<'p> {
    /// Kept for the lifetime tie; all per-PC reads go through `decoded`.
    #[allow(dead_code)]
    program: &'p Program,
    /// Pre-decoded static per-PC tables (µop cache, DHP plans, wish-loop
    /// PC set).
    decoded: DecodedProgram,
    cfg: MachineConfig,
    /// Cached [`MachineConfig::fetch_queue_cap`].
    fetch_queue_cap: usize,
    cycle: u64,
    emu: SpecEmulator,
    mem: MemoryHierarchy,
    bp: HybridPredictor,
    btb: Btb,
    ras: ReturnAddressStack,
    itc: IndirectTargetCache,
    jrs: JrsConfidence,
    loop_pred: Option<LoopPredictor>,
    // Fetch state.
    fetch_pc: u32,
    fetch_stall_until: u64,
    /// Why `fetch_stall_until` was last armed (cycle accounting).
    fetch_stall_reason: StallReason,
    fetch_blocked: bool,
    fetch_line: Option<u64>,
    /// Cycle of the most recent pipeline flush (cycle accounting: idle
    /// cycles inside the refill shadow are charged to `flush_recovery`).
    last_flush_cycle: Option<u64>,
    /// Set by `retire_entry` when a useful (non-overhead) µop retires in
    /// the current cycle.
    cyc_retired_useful: bool,
    /// Set by `retire_entry` when a guard-false µop retires in the
    /// current cycle.
    cyc_retired_guard_false: bool,
    /// Set by `issue` when a ready load/store was refused an MSHR this
    /// cycle (non-blocking hierarchy; drives the `mshr-full` cause).
    cyc_mshr_stalled: bool,
    /// Set by `issue` when a ready store was refused a write-buffer entry
    /// this cycle (non-blocking hierarchy; drives the `writebuf-full`
    /// cause).
    cyc_writebuf_stalled: bool,
    mode: Mode,
    /// §3.5.3 buffer: predicted value per predicate register.
    pred_elim: [Option<bool>; NUM_PREDS],
    /// Live entries in `pred_elim` (emptiness without a scan).
    pred_elim_live: u32,
    /// Decode-time cmp2 pairing: complement partner per predicate register.
    cmp2_partner: [Option<u8>; NUM_PREDS],
    /// §3.5.4 buffer, indexed by static wish-loop pc:
    /// (last predicted direction, seq).
    loop_last_pred: Vec<Option<(bool, u64)>>,
    dhp: DhpState,
    /// Per-PC two-bit counters for the predicate-prediction baseline
    /// (initialized to 2, the historical `or_insert(2)` default).
    pred_value_pht: Vec<u8>,
    /// Per-PC hot-site counters (flat during the run; folded into
    /// `SimStats::hot_sites` once at the end).
    hot_sites: Vec<HotSiteCounts>,
    /// The confidence estimator's own history register: resolved outcomes
    /// of retired wish branches. Using non-speculative outcome history
    /// (rather than the fetch-direction GHR, which contains forced
    /// not-taken bits) keeps confidence contexts stable — our "modified
    /// JRS" (§3.5.5).
    conf_history: u64,
    next_seq: u64,
    next_rob_id: u64,
    fe_queue: VecDeque<FetchedUop>,
    rob: VecDeque<RobEntry>,
    // Wakeup-driven scheduling state. Invariants (checked against the
    // historical full-ROB scans by the golden-equivalence tests):
    // `ready` holds exactly the unissued entries whose registered
    // dependences are all value-ready; `events` holds one (ready_cycle, id)
    // per issued entry; `unresolved` holds the dispatch-ordered ids of
    // un-resolved Whole branches / predicate checks; `store_queue` holds
    // dispatch-ordered store ids with the executed prefix popped.
    ready: BinaryHeap<Reverse<u64>>,
    events: BinaryHeap<Reverse<(u64, u64)>>,
    unresolved: Vec<u64>,
    store_queue: VecDeque<u64>,
    /// Scratch: ready loads blocked behind an older store this cycle.
    blocked_loads: Vec<u64>,
    /// Scratch: the dependence list being built during rename (reused for
    /// every µop — dependences become counters at registration).
    dep_scratch: Vec<u64>,
    /// Recycled spill vectors for [`WaiterList`].
    waiter_pool: Vec<Vec<u64>>,
    gpr_prod: [Option<u64>; NUM_GPRS],
    pred_prod: [Option<u64>; NUM_PREDS],
    stats: SimStats,
    halted: bool,
    trace: Option<Vec<crate::trace::TraceEvent>>,
    /// Retired-instruction stream for the lockstep oracle (off by default).
    retire_log: Option<Vec<wishbranch_isa::RetireRecord>>,
}

/// Reusable simulator buffers: a worker thread keeps one `SimScratch` and
/// threads it through consecutive [`Simulator::with_scratch`] /
/// [`Simulator::recycle`] pairs so back-to-back jobs reuse the decoded-µop
/// tables, ROB/front-end queues and scheduling heaps instead of
/// reallocating them per job. Purely an allocation cache: a simulator
/// built from a scratch pool is bit-identical to one built fresh.
#[derive(Default)]
pub struct SimScratch {
    decoded: DecodedProgram,
    loop_last_pred: Vec<Option<(bool, u64)>>,
    pred_value_pht: Vec<u8>,
    hot_sites: Vec<HotSiteCounts>,
    fe_queue: VecDeque<FetchedUop>,
    rob: VecDeque<RobEntry>,
    ready: BinaryHeap<Reverse<u64>>,
    events: BinaryHeap<Reverse<(u64, u64)>>,
    unresolved: Vec<u64>,
    store_queue: VecDeque<u64>,
    blocked_loads: Vec<u64>,
    dep_scratch: Vec<u64>,
    waiter_pool: Vec<Vec<u64>>,
}

impl<'p> Simulator<'p> {
    /// Creates a simulator over `program` with cold predictors and caches.
    #[must_use]
    pub fn new(program: &'p Program, cfg: MachineConfig) -> Simulator<'p> {
        let mut scratch = SimScratch::default();
        Simulator::with_scratch(program, cfg, &mut scratch)
    }

    /// Like [`Simulator::new`], but reuses the buffer allocations held in
    /// `scratch` (emptied by a prior [`Simulator::recycle`]). Simulation
    /// results are bit-identical either way.
    #[must_use]
    pub fn with_scratch(
        program: &'p Program,
        cfg: MachineConfig,
        scratch: &mut SimScratch,
    ) -> Simulator<'p> {
        let mem = MemoryHierarchy::new(cfg.mem);
        let bp = HybridPredictor::new(cfg.bpred);
        let btb = Btb::new(cfg.btb);
        let jrs = JrsConfidence::new(cfg.jrs);
        let loop_pred = cfg.wish_loop_predictor.map(LoopPredictor::new);
        let n = program.len();
        let mut decoded = std::mem::take(&mut scratch.decoded);
        decoded.rebuild(program, &cfg);
        let mut loop_last_pred = std::mem::take(&mut scratch.loop_last_pred);
        loop_last_pred.clear();
        loop_last_pred.resize(n, None);
        let mut pred_value_pht = std::mem::take(&mut scratch.pred_value_pht);
        pred_value_pht.clear();
        pred_value_pht.resize(n, 2);
        let mut hot_sites = std::mem::take(&mut scratch.hot_sites);
        hot_sites.clear();
        hot_sites.resize(n, HotSiteCounts::default());
        Simulator {
            fetch_pc: program.entry(),
            program,
            decoded,
            fetch_queue_cap: cfg.fetch_queue_cap(),
            cycle: 0,
            emu: SpecEmulator::new(),
            mem,
            bp,
            btb,
            ras: ReturnAddressStack::new(),
            itc: IndirectTargetCache::new(IndirectConfig::default()),
            jrs,
            loop_pred,
            fetch_stall_until: 0,
            fetch_stall_reason: StallReason::Redirect,
            fetch_blocked: false,
            fetch_line: None,
            last_flush_cycle: None,
            cyc_retired_useful: false,
            cyc_retired_guard_false: false,
            cyc_mshr_stalled: false,
            cyc_writebuf_stalled: false,
            mode: Mode::Normal,
            pred_elim: [None; NUM_PREDS],
            pred_elim_live: 0,
            cmp2_partner: [None; NUM_PREDS],
            loop_last_pred,
            dhp: DhpState::Off,
            pred_value_pht,
            hot_sites,
            conf_history: 0,
            next_seq: 1,
            next_rob_id: 1,
            fe_queue: std::mem::take(&mut scratch.fe_queue),
            rob: std::mem::take(&mut scratch.rob),
            ready: std::mem::take(&mut scratch.ready),
            events: std::mem::take(&mut scratch.events),
            unresolved: std::mem::take(&mut scratch.unresolved),
            store_queue: std::mem::take(&mut scratch.store_queue),
            blocked_loads: std::mem::take(&mut scratch.blocked_loads),
            dep_scratch: std::mem::take(&mut scratch.dep_scratch),
            waiter_pool: std::mem::take(&mut scratch.waiter_pool),
            gpr_prod: [None; NUM_GPRS],
            pred_prod: [None; NUM_PREDS],
            stats: SimStats::default(),
            halted: false,
            trace: None,
            retire_log: None,
            cfg,
        }
    }

    /// Returns this simulator's buffers to `scratch` for the next
    /// [`Simulator::with_scratch`] on the same worker.
    pub fn recycle(mut self, scratch: &mut SimScratch) {
        self.fe_queue.clear();
        self.rob.clear();
        self.ready.clear();
        self.events.clear();
        self.unresolved.clear();
        self.store_queue.clear();
        self.blocked_loads.clear();
        self.dep_scratch.clear();
        scratch.decoded = self.decoded;
        scratch.loop_last_pred = self.loop_last_pred;
        scratch.pred_value_pht = self.pred_value_pht;
        scratch.hot_sites = self.hot_sites;
        scratch.fe_queue = self.fe_queue;
        scratch.rob = self.rob;
        scratch.ready = self.ready;
        scratch.events = self.events;
        scratch.unresolved = self.unresolved;
        scratch.store_queue = self.store_queue;
        scratch.blocked_loads = self.blocked_loads;
        scratch.dep_scratch = self.dep_scratch;
        scratch.waiter_pool = self.waiter_pool;
    }

    /// Enables pipeline event tracing (see [`crate::trace`]). Call before
    /// [`Simulator::run`]; collect the events with
    /// [`Simulator::take_trace`]. Tracing does not change timing.
    pub fn enable_trace(&mut self) {
        self.trace = Some(Vec::new());
    }

    /// Takes the collected trace (empty if tracing was never enabled).
    pub fn take_trace(&mut self) -> Vec<crate::trace::TraceEvent> {
        self.trace.take().unwrap_or_default()
    }

    /// Enables the retired-instruction stream for differential validation
    /// against [`wishbranch_isa::LockstepOracle`]. Call before
    /// [`Simulator::run`]; collect with [`Simulator::take_retire_log`].
    /// Like tracing, the log observes retirement and never changes timing.
    pub fn enable_retire_log(&mut self) {
        self.retire_log = Some(Vec::new());
    }

    /// Takes the collected retired stream (empty if never enabled). One
    /// record per retired architectural µop in commit order; select-µop
    /// `Compute` halves are folded into their `Select` records.
    pub fn take_retire_log(&mut self) -> Vec<wishbranch_isa::RetireRecord> {
        self.retire_log.take().unwrap_or_default()
    }

    fn trace_event(
        &mut self,
        kind: crate::trace::TraceKind,
        seq: u64,
        pc: u32,
        insn: &Insn,
        extra: u64,
    ) {
        // Every call site pre-guards with `self.trace.is_some()`: the
        // non-tracing path must pay nothing for disasm formatting or
        // event allocation.
        debug_assert!(
            self.trace.is_some(),
            "trace_event called without an active trace"
        );
        let cycle = self.cycle;
        if let Some(t) = self.trace.as_mut() {
            t.push(crate::trace::TraceEvent {
                cycle,
                kind,
                seq,
                pc,
                disasm: insn.to_string(),
                extra,
            });
        }
    }

    /// Preloads a data-memory word (program input).
    pub fn preload_mem(&mut self, addr: u64, value: i64) {
        self.emu.mem.insert(addr, value);
    }

    /// Preloads a general register (program input).
    pub fn preload_reg(&mut self, reg: Gpr, value: i64) {
        self.emu.regs[reg.index()] = value;
    }

    /// Runs to `halt` retirement. The accumulated statistics move into the
    /// returned [`SimResult`]; a second `run` on the same simulator would
    /// observe them reset.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::CycleLimitExceeded`] if the configured cycle
    /// budget runs out (runaway program or configuration bug).
    pub fn run(&mut self) -> Result<SimResult, SimError> {
        while !self.halted {
            if self.cycle >= self.cfg.max_cycles {
                return Err(SimError::CycleLimitExceeded {
                    limit: self.cfg.max_cycles,
                });
            }
            // Resolve completions first so a branch that finished executing
            // this cycle can retire this cycle (otherwise every branch that
            // reaches the ROB head right after completing would lose a
            // cycle, throttling retirement in window-full phases).
            self.resolve_branches();
            let retired_before = self.stats.retired_uops;
            self.cyc_retired_useful = false;
            self.cyc_retired_guard_false = false;
            self.cyc_mshr_stalled = false;
            self.cyc_writebuf_stalled = false;
            self.retire();
            let retired_any = self.stats.retired_uops != retired_before;
            if !retired_any {
                self.stats.retire_idle_cycles += 1;
            }
            if self.halted {
                // The halt-retiring iteration does not increment `cycle`,
                // so it is deliberately left out of the accounting.
                break;
            }
            self.issue();
            let rob_before = self.rob.len();
            self.dispatch();
            if self.rob.len() == rob_before {
                self.stats.dispatch_idle_cycles += 1;
            }
            let fetched_before = self.stats.fetched_uops;
            self.fetch();
            if self.stats.fetched_uops == fetched_before {
                self.stats.fetch_idle_cycles += 1;
                self.account_fetch_idle();
            }
            // Attribute this cycle to exactly one cause, immediately before
            // the cycle counter advances — this placement makes the
            // `cycle_accounting.total() == cycles` invariant structural.
            self.account_cycle(retired_any);
            self.cycle += 1;
        }
        self.stats.cycles = self.cycle;
        let (ic, l1, l2) = self.mem.stats();
        self.stats.icache = ic;
        self.stats.l1d = l1;
        self.stats.l2 = l2;
        self.stats.wrong_path_fills = self.mem.wrong_path_fills();
        // Fold the flat per-PC counters into the reported map. Every
        // touched row was incremented at least once, so keeping only
        // non-default rows reproduces the historical on-demand map exactly.
        for (pc, c) in self.hot_sites.iter().enumerate() {
            if *c != HotSiteCounts::default() {
                self.stats.hot_sites.insert(pc as u32, *c);
            }
        }
        Ok(SimResult {
            stats: std::mem::take(&mut self.stats),
            final_regs: self.emu.regs,
            final_preds: self.emu.preds,
            final_mem: self.emu.mem.sorted_entries().into_iter().collect(),
        })
    }

    // ------------------------------------------------------ cycle accounting

    /// Splits a zero-fetch cycle by cause (`SimStats::fetch_idle_*`). The
    /// four split counters always sum to `fetch_idle_cycles`.
    fn account_fetch_idle(&mut self) {
        if self.fetch_blocked {
            self.stats.fetch_idle_blocked += 1;
        } else if self.cycle < self.fetch_stall_until {
            match self.fetch_stall_reason {
                StallReason::IMiss => self.stats.fetch_idle_imiss += 1,
                StallReason::Redirect => self.stats.fetch_idle_redirect += 1,
            }
        } else if self.fe_queue.len() >= self.fetch_queue_cap {
            self.stats.fetch_idle_queue_full += 1;
        } else {
            // An I-miss stall armed during this cycle's own fetch attempt
            // lands in the branch above; anything left is a same-cycle
            // redirect bubble.
            self.stats.fetch_idle_redirect += 1;
        }
    }

    /// Charges the current cycle to exactly one [`CycleAccounting`]
    /// category (top-down: what retired, else why nothing did).
    fn account_cycle(&mut self, retired_any: bool) {
        let acc = &mut self.stats.cycle_accounting;
        if retired_any {
            if self.cyc_retired_useful {
                acc.useful_retire += 1;
            } else if self.cyc_retired_guard_false {
                acc.guard_false_retire += 1;
            } else {
                acc.select_uop_retire += 1;
            }
            return;
        }
        if !self.rob.is_empty() {
            // Something is in flight but the head cannot retire yet. The
            // two memory causes only fire under the non-blocking
            // hierarchy: `cyc_mshr_stalled` is set when an issue was
            // refused this cycle, and `fill_pending_at` is true while a
            // line fill is still in flight. Both stay false under the
            // flat model, so its attribution is unchanged.
            if self.cyc_mshr_stalled {
                acc.mshr_full += 1;
            } else if self.cyc_writebuf_stalled {
                acc.writebuf_full += 1;
            } else if self.rob.len() >= self.cfg.rob_size {
                acc.rob_stall += 1;
            } else if self.mem.fill_pending_at(self.cycle) {
                acc.miss_pending += 1;
            } else {
                acc.exec_wait += 1;
            }
            return;
        }
        // Empty window: the front end is the bottleneck.
        let in_flush_shadow = self
            .last_flush_cycle
            .is_some_and(|c| self.cycle <= c + self.cfg.pipeline_depth + 1);
        if in_flush_shadow {
            acc.flush_recovery += 1;
        } else if self.cycle < self.fetch_stall_until
            && self.fetch_stall_reason == StallReason::IMiss
            && !self.fetch_blocked
        {
            // Non-blocking I-side stalls (an I-fill in flight in the
            // I-MSHRs) get their own cause; flat-model I-miss stalls keep
            // the historical `fetch_imiss` attribution.
            if self.mem.ifill_pending_at(self.cycle) {
                acc.imiss_pending += 1;
            } else {
                acc.fetch_imiss += 1;
            }
        } else if !self.fe_queue.is_empty() || self.fetch_blocked {
            acc.frontend_fill += 1;
        } else {
            acc.fetch_redirect += 1;
        }
    }

    /// Per-PC hot-site row.
    fn site(&mut self, pc: u32) -> &mut HotSiteCounts {
        &mut self.hot_sites[pc as usize]
    }

    // ------------------------------------------------------------- wakeup

    /// Returns the spill vector to the pool (keeps steady-state waiter
    /// registration allocation-free).
    fn recycle_spill(&mut self, w: WaiterList) {
        if w.spill.capacity() > 0 {
            let mut s = w.spill;
            s.clear();
            self.waiter_pool.push(s);
        }
    }

    /// Wakes every waiter in the list (their producer became value-ready).
    fn wake_list(&mut self, w: WaiterList) {
        let n = w.len as usize;
        for i in 0..n.min(WAITERS_INLINE) {
            self.dec_unready(w.inline[i]);
        }
        for i in WAITERS_INLINE..n {
            self.dec_unready(w.spill[i - WAITERS_INLINE]);
        }
        self.recycle_spill(w);
    }

    /// A completion event fired for `id`: wake its registered waiters.
    fn wake(&mut self, id: u64) {
        let Some(front) = self.rob.front() else {
            return; // producer retired with the rest of the window
        };
        if id < front.id {
            return; // retired: its waiters were already woken at retire
        }
        let idx = (id - front.id) as usize;
        debug_assert!(idx < self.rob.len(), "events are purged on flush");
        let w = std::mem::take(&mut self.rob[idx].waiters);
        self.wake_list(w);
    }

    /// One of `id`'s producers became value-ready.
    fn dec_unready(&mut self, id: u64) {
        let front_id = self.rob.front().expect("waiters are live entries").id;
        let idx = (id - front_id) as usize;
        let e = &mut self.rob[idx];
        debug_assert!(e.unready > 0, "each registration decrements once");
        debug_assert!(!e.issued, "issued entries had no outstanding deps");
        e.unready -= 1;
        if e.unready == 0 {
            self.ready.push(Reverse(id));
        }
    }

    // ----------------------------------------------------------------- retire

    fn retire(&mut self) {
        let mut retired = 0;
        while retired < self.cfg.retire_width {
            let Some(head) = self.rob.front() else { break };
            if !head.done || head.ready_cycle > self.cycle {
                break;
            }
            if head.f.insn.is_branch() && !head.resolved {
                break;
            }
            // Non-branch predicate checks always resolve before they can
            // retire: resolution runs first each cycle with the same
            // readiness condition.
            debug_assert!(
                head.resolved || head.role != Role::Whole || head.f.pred_check.is_none(),
                "pred checks resolve before retiring"
            );
            let mut entry = self.rob.pop_front().expect("checked non-empty");
            // Wake consumers still waiting on this producer (its completion
            // event may only fire later this cycle, after retire).
            let waiters = std::mem::take(&mut entry.waiters);
            self.wake_list(waiters);
            retired += 1;
            self.retire_entry(&entry);
            if self.halted {
                return;
            }
        }
    }

    fn retire_entry(&mut self, e: &RobEntry) {
        if self.trace.is_some() {
            self.trace_event(crate::trace::TraceKind::Retire, e.f.seq, e.f.pc, &e.f.insn, 0);
        }
        if let Some(log) = self.retire_log.as_mut() {
            // One record per architectural µop: under select expansion the
            // Select half carries the µop's committed effects; the Compute
            // half is implementation detail.
            if e.role != Role::Compute {
                let info = &e.f.info;
                let defs = e.f.insn.def_preds();
                let mut pred_writes = [None, None];
                for slot in 0..2 {
                    if let (Some(p), Some(v)) = (defs[slot], info.pred_values[slot]) {
                        pred_writes[slot] = Some((p.index() as u8, v));
                    }
                }
                log.push(wishbranch_isa::RetireRecord {
                    seq: e.f.seq,
                    pc: e.f.pc,
                    next_pc: info.followed_next,
                    guard_true: info.guard_true,
                    taken: info.actual_taken,
                    forced: info.followed_next != info.actual_next,
                    wish: e.f.insn.wish,
                    dhp: e.f.br.is_some_and(|b| b.dhp),
                    hw_guard: e.f.hw_guard.is_some(),
                    reg_write: info.reg_write,
                    pred_writes,
                    mem_write: if info.is_store {
                        info.mem_addr.zip(info.store_value)
                    } else {
                        None
                    },
                    halted: info.halted,
                });
            }
        }
        self.stats.retired_uops += 1;
        if e.role == Role::Select {
            self.stats.retired_select_uops += 1;
        }
        let guard_false = e.role != Role::Compute
            && !e.f.info.guard_true
            && (e.f.insn.guard.is_some() || e.f.hw_guard.is_some());
        if guard_false {
            self.stats.retired_guard_false += 1;
            self.site(e.f.pc).guard_false_uops += 1;
            self.cyc_retired_guard_false = true;
        } else if e.role != Role::Select {
            // Neither predication overhead nor select-µop overhead.
            self.cyc_retired_useful = true;
        }
        // Rename-map references to this entry are left in place: every
        // reader treats a producer id below the ROB head as architecturally
        // ready, and retired ids are never recycled.
        self.emu.commit_through(e.f.seq);

        if let InsnKind::Halt = e.f.insn.kind {
            self.halted = true;
            return;
        }

        // Predicate-prediction training.
        if e.f.pred_check.is_some() {
            self.stats.pred_value_predictions += 1;
            if let Some(actual) = e.f.info.pred_values[0] {
                let c = &mut self.pred_value_pht[e.f.pc as usize];
                if actual {
                    *c = (*c + 1).min(3);
                } else {
                    *c = c.saturating_sub(1);
                }
            }
        }

        // Branch bookkeeping & trainer updates happen at retirement.
        if e.role != Role::Whole || !e.f.insn.is_branch() {
            return;
        }
        let Some(br) = e.f.br else { return };
        let insn = e.f.insn;
        match insn.kind {
            InsnKind::Branch {
                kind: BranchKind::Cond { .. },
                ..
            } => {
                self.stats.retired_cond_branches += 1;
                let actual = e.f.info.actual_taken;
                if let Some(token) = br.bp_token {
                    self.bp.update(e.f.pc, &token, actual);
                }
                if e.mispredicted {
                    self.stats.retired_mispredicted += 1;
                }
                if let Some(conf_high) = br.conf_high {
                    // Dedicated confidence estimator training (wish
                    // branches, and DHP-eligible branches when DHP is on):
                    // "correct" means the *predictor* (not the forced
                    // direction) would have been right.
                    let predictor_correct = br.predictor_said_taken == actual;
                    if !self.cfg.oracles.perfect_confidence {
                        self.jrs.update(e.f.pc, br.conf_ghr, predictor_correct);
                    }
                    self.conf_history = (self.conf_history << 1) | u64::from(actual);
                    let counts: Option<&mut WishClassCounts> = match insn.wish {
                        Some(WishType::Jump) => Some(&mut self.stats.wish_jumps),
                        Some(WishType::Join) => Some(&mut self.stats.wish_joins),
                        Some(WishType::Loop) => Some(&mut self.stats.wish_loops),
                        None => None, // DHP branch
                    };
                    if let Some(counts) = counts {
                        match (conf_high, predictor_correct) {
                            (true, true) => counts.high_correct += 1,
                            (true, false) => counts.high_mispredicted += 1,
                            (false, true) => counts.low_correct += 1,
                            (false, false) => counts.low_mispredicted += 1,
                        }
                    }
                    match e.loop_class {
                        Some(LoopExitClass::EarlyExit) => self.stats.loop_early_exits += 1,
                        Some(LoopExitClass::LateExit) => self.stats.loop_late_exits += 1,
                        Some(LoopExitClass::NoExit) => self.stats.loop_no_exits += 1,
                        None => {}
                    }
                }
                if insn.wish == Some(WishType::Loop) {
                    if let (Some(lp), Some(ltok)) = (self.loop_pred.as_mut(), br.loop_token) {
                        lp.update(e.f.pc, &ltok, actual);
                    }
                }
                // Drop the front-end loop buffer entry once the loop branch
                // retires ("fetched but not yet retired", §3.5.4).
                if insn.wish == Some(WishType::Loop) {
                    if let Some((_, seq)) = self.loop_last_pred[e.f.pc as usize] {
                        if seq == e.f.seq {
                            self.loop_last_pred[e.f.pc as usize] = None;
                        }
                    }
                }
            }
            InsnKind::Branch {
                kind: BranchKind::Indirect { .. },
                ..
            } => {
                self.itc
                    .update(e.f.pc, br.ghr_checkpoint, e.f.info.actual_next);
                if e.mispredicted {
                    self.stats.retired_mispredicted += 1;
                }
            }
            _ => {
                if e.mispredicted {
                    self.stats.retired_mispredicted += 1;
                }
            }
        }
    }

    // ---------------------------------------------------------- resolution

    fn resolve_branches(&mut self) {
        // Walk only the in-flight unresolved branches / predicate checks,
        // oldest first (the list is in dispatch order). Resolution is
        // out-of-order: a younger completed branch resolves while an older
        // incomplete one stays pending. A flush truncates everything
        // younger — including the list's own tail — so the walk simply
        // continues; the already-examined prefix cannot have changed.
        let mut i = 0;
        while i < self.unresolved.len() {
            let id = self.unresolved[i];
            let front_id = self.rob.front().expect("unresolved entries are live").id;
            debug_assert!(id >= front_id, "unresolved entries never retire first");
            let idx = (id - front_id) as usize;
            let e = &self.rob[idx];
            if !e.done || e.ready_cycle > self.cycle {
                i += 1;
                continue;
            }
            self.unresolved.remove(i);
            if e.f.pred_check.is_some() {
                self.resolve_pred_check(idx);
            } else {
                self.resolve_one(idx);
            }
        }
    }

    /// Verifies a predicted predicate definition; returns whether it
    /// flushed (the definition itself is correct — only its consumers used
    /// the predicted value, so fetch resumes right after it).
    fn resolve_pred_check(&mut self, idx: usize) -> bool {
        let e = &mut self.rob[idx];
        e.resolved = true;
        let predicted = e.f.pred_check.expect("caller checked");
        // Guard-false definitions keep their old value; treat as correct
        // (consumers of the old value waited on the older producer).
        let Some(actual) = e.f.info.pred_values[0] else {
            return false;
        };
        if actual == predicted {
            return false;
        }
        e.mispredicted = true;
        let site_pc = e.f.pc;
        self.stats.pred_value_mispredictions += 1;
        self.stats.flushes += 1;
        self.site(site_pc).flushes += 1;
        self.flush_after(idx, site_pc + 1);
        true
    }

    /// Resolves the branch at ROB index `idx`; returns whether it flushed.
    fn resolve_one(&mut self, idx: usize) -> bool {
        let e = &mut self.rob[idx];
        e.resolved = true;
        let br = e.f.br.expect("branches always carry metadata");
        let actual_next = e.f.info.actual_next;
        let mispredicted = br.predicted_next != actual_next;
        e.mispredicted = mispredicted;
        if !mispredicted {
            return false;
        }
        let insn = e.f.insn;
        let site_pc = e.f.pc;
        let is_wish = insn.is_wish_branch() && self.cfg.wish_enabled;
        let fetched_low_conf = matches!(br.fetch_mode, Mode::LowConf { .. });

        // DHP branches never flush: both arms are in the pipeline under
        // injected guards, so the fetched path is architecturally complete
        // either way.
        if br.dhp {
            self.stats.flushes_avoided += 1;
            self.stats.dhp_flushes_avoided += 1;
            self.site(site_pc).flushes_avoided += 1;
            return false;
        }
        // §3.5.4: decide whether this misprediction flushes.
        let mut flush = true;
        if is_wish && fetched_low_conf {
            match insn.wish.expect("is_wish") {
                WishType::Jump | WishType::Join => {
                    // Low-confidence wish jumps/joins never flush: both
                    // paths are predicated, the fetched fall-through path is
                    // architecturally complete.
                    flush = false;
                }
                WishType::Loop => {
                    let actual_taken = e.f.info.actual_taken;
                    if actual_taken {
                        // Early-exit: the front end left the loop too soon.
                        e.loop_class = Some(LoopExitClass::EarlyExit);
                    } else {
                        // Over-iteration: late-exit vs no-exit via the
                        // front-end last-prediction buffer.
                        let last = self.loop_last_pred[e.f.pc as usize];
                        match last {
                            Some((false, _)) => {
                                e.loop_class = Some(LoopExitClass::LateExit);
                                flush = false;
                            }
                            _ => {
                                e.loop_class = Some(LoopExitClass::NoExit);
                            }
                        }
                    }
                }
            }
        }
        if !flush {
            self.stats.flushes_avoided += 1;
            self.site(site_pc).flushes_avoided += 1;
            return false;
        }
        self.stats.flushes += 1;
        self.site(site_pc).flushes += 1;
        // The flush steers fetch back onto the architectural path: this
        // branch retires having followed `actual_next`, not the squashed
        // prediction it was fetched with.
        self.rob[idx].f.info.followed_next = actual_next;
        self.flush_after(idx, actual_next);
        true
    }

    fn flush_after(&mut self, idx: usize, resume_pc: u32) {
        let e = &self.rob[idx];
        let seq = e.f.seq;
        let flush_pc = e.f.pc;
        let boundary = e.id;
        let br = e.f.br.expect("flush source is a branch");
        let is_cond = e.f.insn.is_conditional_branch();
        let actual_taken = e.f.info.actual_taken;

        // Squash younger ROB entries and the whole front-end queue.
        let squashed_rob = self.rob.len() - (idx + 1);
        while self.rob.len() > idx + 1 {
            let dead = self.rob.pop_back().expect("length checked");
            self.recycle_spill(dead.waiters);
        }
        let squashed_total = squashed_rob as u64 + self.fe_queue.len() as u64;
        self.stats.squashed_uops += squashed_total;
        self.fe_queue.clear();
        if self.trace.is_some() {
            let (seq, pc, insn) = {
                let e = &self.rob[idx];
                (e.f.seq, e.f.pc, e.f.insn)
            };
            self.trace_event(crate::trace::TraceKind::Flush, seq, pc, &insn, squashed_total);
        }
        // Keep ROB ids contiguous (dep lookups index by id − front.id):
        // squashed ids are recycled — nothing can reference them, since
        // surviving entries only depend on older ids, the rename maps are
        // rebuilt below, and the scheduling structures are purged here.
        self.next_rob_id = self.rob.back().map_or(self.next_rob_id, |e| e.id + 1);
        self.ready.retain(|&Reverse(id)| id <= boundary);
        self.events.retain(|&Reverse((_, id))| id <= boundary);
        while self.store_queue.back().is_some_and(|&id| id > boundary) {
            self.store_queue.pop_back();
        }
        let keep = self.unresolved.partition_point(|&id| id <= boundary);
        self.unresolved.truncate(keep);

        // Rebuild rename maps from the surviving entries, dropping their
        // squashed waiters along the way.
        self.gpr_prod = [None; NUM_GPRS];
        self.pred_prod = [None; NUM_PREDS];
        for i in 0..self.rob.len() {
            let (id, pc, role) = {
                let e = &mut self.rob[i];
                e.waiters.truncate_above(boundary);
                (e.id, e.f.pc, e.role)
            };
            if role == Role::Compute {
                continue; // temps are invisible to the rename map
            }
            let info = &self.decoded.pcs[pc as usize];
            if let Some(d) = info.def_gpr {
                self.gpr_prod[d.index()] = Some(id);
            }
            for p in info.def_preds.into_iter().flatten() {
                if !p.is_hardwired_true() {
                    self.pred_prod[p.index()] = Some(id);
                }
            }
        }

        // Roll the speculative world back to just after the branch.
        self.emu.rollback_after(seq);
        self.ras.restore(&br.ras_checkpoint);
        if is_cond {
            self.bp.restore_ghr(br.ghr_checkpoint, actual_taken);
        } else {
            // Non-conditional branches never entered the GHR.
            self.bp.set_ghr(br.ghr_checkpoint);
        }
        // Invalidate speculative front-end structures (§3.5.3: the buffer
        // is reset on a branch misprediction).
        self.pred_elim = [None; NUM_PREDS];
        self.pred_elim_live = 0;
        self.cmp2_partner = [None; NUM_PREDS];
        self.mode = Mode::Normal;
        self.dhp = DhpState::Off;
        for i in 0..self.decoded.wish_loop_pcs.len() {
            let pc = self.decoded.wish_loop_pcs[i];
            if let Some((_, s)) = self.loop_last_pred[pc as usize] {
                if s > seq {
                    self.loop_last_pred[pc as usize] = None;
                }
            }
        }
        if let (Some(lp), Some(ltok)) = (self.loop_pred.as_mut(), br.loop_token) {
            lp.repair(flush_pc, &ltok, actual_taken);
        }

        // Redirect fetch. In the non-blocking model the wrong-path
        // instruction fills still in flight are cancelled (except the
        // resume line's, which the redirected fetch coalesces onto) —
        // see `MemoryHierarchy::squash_wrong_path_ifills`. No-op flat.
        self.mem
            .squash_wrong_path_ifills(self.cycle, insn_addr(resume_pc));
        self.fetch_pc = resume_pc;
        self.fetch_blocked = false;
        self.fetch_line = None;
        self.fetch_stall_until = self.cycle + 1;
        self.fetch_stall_reason = StallReason::Redirect;
        self.last_flush_cycle = Some(self.cycle);
    }

    // -------------------------------------------------------------- issue

    /// Whether the store `id` has executed (its cache access happened).
    /// Executed stores never revert — retirement and further cycles only
    /// strengthen this.
    fn store_executed(&self, id: u64) -> bool {
        let Some(front) = self.rob.front() else {
            return true; // retired
        };
        if id < front.id {
            return true; // retired
        }
        let e = &self.rob[(id - front.id) as usize];
        e.done && e.ready_cycle <= self.cycle
    }

    fn issue(&mut self) {
        // Fire the completion events due this cycle, waking dependents.
        // Latencies are ≥ 1, so nothing issued *this* cycle completes this
        // cycle — draining up-front is exhaustive.
        while let Some(&Reverse((ready_cycle, id))) = self.events.peek() {
            if ready_cycle > self.cycle {
                break;
            }
            self.events.pop();
            self.wake(id);
        }
        // Oldest not-yet-executed store (conservative load/store ordering).
        // The executed prefix is popped for good; the front is the limit
        // for the whole cycle, exactly like the historical single scan.
        while let Some(&sid) = self.store_queue.front() {
            if self.store_executed(sid) {
                self.store_queue.pop_front();
            } else {
                break;
            }
        }
        let store_limit = self.store_queue.front().copied();

        let mut issued = 0;
        debug_assert!(self.blocked_loads.is_empty());
        while issued < self.cfg.issue_width {
            let Some(&Reverse(id)) = self.ready.peek() else { break };
            self.ready.pop();
            let front_id = self.rob.front().expect("ready entries are live").id;
            let idx = (id - front_id) as usize;
            let e = &self.rob[idx];
            debug_assert!(!e.issued && e.unready == 0);
            if matches!(e.f.insn.kind, InsnKind::Load { .. })
                && store_limit.is_some_and(|limit| id > limit)
            {
                // An older store has not executed. With forwarding on, a
                // load fully covered by the youngest older overlapping
                // store issues anyway and takes the store's value (the
                // forward happens in `exec_latency`); partial overlap and
                // no-match wait conservatively. Blocked loads consume no
                // issue bandwidth (the scan this heap replaces skipped
                // them without counting).
                match self.forward_state(idx) {
                    ForwardState::Forward => {}
                    ForwardState::PartialOverlap => {
                        self.stats.load_replays += 1;
                        self.blocked_loads.push(id);
                        continue;
                    }
                    ForwardState::NoMatch => {
                        self.blocked_loads.push(id);
                        continue;
                    }
                }
            }
            let Some(lat) = self.exec_latency(idx) else {
                // The memory access could not be accepted this cycle —
                // MSHRs, write buffer or ports all busy; `exec_latency`
                // recorded which. Retry next cycle without consuming
                // issue bandwidth (mirrors blocked loads).
                self.blocked_loads.push(id);
                continue;
            };
            if self.trace.is_some() {
                let (seq, pc, insn) = {
                    let e = &self.rob[idx];
                    (e.f.seq, e.f.pc, e.f.insn)
                };
                self.trace_event(crate::trace::TraceKind::Issue, seq, pc, &insn, self.cycle + lat);
            }
            let e = &mut self.rob[idx];
            e.issued = true;
            e.done = true;
            e.ready_cycle = self.cycle + lat;
            self.events.push(Reverse((e.ready_cycle, id)));
            issued += 1;
        }
        // Blocked loads stay ready; they compete again next cycle.
        while let Some(id) = self.blocked_loads.pop() {
            self.ready.push(Reverse(id));
        }
    }

    /// Execution latency of the entry at `idx`, or `None` when a memory
    /// access could not be accepted this cycle (non-blocking hierarchy,
    /// every needed MSHR busy) — the caller retries next cycle.
    fn exec_latency(&mut self, idx: usize) -> Option<u64> {
        let e = &self.rob[idx];
        let guard_true = e.f.info.guard_true;
        let role = e.role;
        let pc = u64::from(e.f.pc);
        match e.f.insn.kind {
            InsnKind::Alu { op, .. } => Some(match op {
                wishbranch_isa::AluOp::Mul => self.cfg.mul_latency,
                wishbranch_isa::AluOp::Div => self.cfg.div_latency,
                _ => 1,
            }),
            InsnKind::Load { .. } => {
                // C-style guard-false loads are register moves; the
                // select-µop compute part always accesses the cache.
                let accesses_mem = match role {
                    Role::Whole => guard_true,
                    Role::Compute => true,
                    Role::Select => false,
                };
                if accesses_mem {
                    if let Some(addr) = e.f.info.mem_addr {
                        if self.cfg.mem.store_forwarding
                            && matches!(self.forward_state(idx), ForwardState::Forward)
                        {
                            // Full overlap with the youngest older
                            // in-flight store: the value comes straight
                            // from the store queue at L1-hit latency, no
                            // cache access, no MSHR.
                            self.stats.store_forwards += 1;
                            return Some(1 + self.cfg.mem.l1d.latency);
                        }
                        if self.mem.realistic() {
                            return match self.mem.data_access_nonblocking(
                                addr, false, pc, self.cycle,
                            ) {
                                AccessOutcome::Ready(lat) => Some(1 + lat),
                                AccessOutcome::Pending(fill) => {
                                    Some(1 + fill.saturating_sub(self.cycle).max(1))
                                }
                                AccessOutcome::MshrFull => {
                                    self.cyc_mshr_stalled = true;
                                    self.stats.mshr_full_stalls += 1;
                                    None
                                }
                                AccessOutcome::PortBusy => {
                                    self.stats.port_conflict_stalls += 1;
                                    None
                                }
                            };
                        }
                        return Some(1 + self.mem.data_access_at(addr, false, self.cycle));
                    }
                }
                Some(1)
            }
            InsnKind::Store { .. } => {
                if guard_true && role != Role::Select {
                    if let Some(addr) = e.f.info.mem_addr {
                        if self.mem.realistic() {
                            // Write-allocate: the store needs an MSHR on a
                            // miss like a load, plus (when enabled) a free
                            // write-buffer entry to drain through. Once
                            // accepted it completes in one cycle — the
                            // drain continues asynchronously behind it.
                            match self.mem.store_access_nonblocking(addr, pc, self.cycle) {
                                StoreOutcome::Accepted => {}
                                StoreOutcome::WriteBufFull => {
                                    self.cyc_writebuf_stalled = true;
                                    self.stats.writebuf_full_stalls += 1;
                                    return None;
                                }
                                StoreOutcome::MshrFull => {
                                    self.cyc_mshr_stalled = true;
                                    self.stats.mshr_full_stalls += 1;
                                    return None;
                                }
                                StoreOutcome::PortBusy => {
                                    self.stats.port_conflict_stalls += 1;
                                    return None;
                                }
                            }
                        } else {
                            self.mem.data_access_at(addr, true, self.cycle);
                        }
                    }
                }
                Some(1)
            }
            _ => Some(1),
        }
    }

    /// Store-to-load-forwarding verdict for the load at `idx`: scan older
    /// in-flight stores youngest-first; the first one whose 8-byte window
    /// overlaps the load decides. Full overlap with ready store data
    /// forwards; partial overlap (or full overlap with the store's data
    /// not yet ready) conservatively waits.
    fn forward_state(&self, idx: usize) -> ForwardState {
        if !self.cfg.mem.store_forwarding {
            return ForwardState::NoMatch;
        }
        let e = &self.rob[idx];
        let accesses_mem = match e.role {
            Role::Whole => e.f.info.guard_true,
            Role::Compute => true,
            Role::Select => false,
        };
        let Some(la) = e.f.info.mem_addr else {
            return ForwardState::NoMatch;
        };
        if !accesses_mem {
            return ForwardState::NoMatch;
        }
        let id = e.id;
        let front_id = self.rob.front().expect("idx is live").id;
        for &sid in self.store_queue.iter().rev() {
            if sid >= id {
                continue; // younger than the load
            }
            let s = &self.rob[(sid - front_id) as usize];
            // Guard-false and select-placeholder stores write nothing.
            if !s.f.info.guard_true || s.role == Role::Select {
                continue;
            }
            let Some(sa) = s.f.info.mem_addr else { continue };
            if sa == la {
                if s.issued || s.unready == 0 {
                    return ForwardState::Forward;
                }
                // Store data not ready yet: wait for it.
                return ForwardState::NoMatch;
            }
            if sa < la + 8 && la < sa + 8 {
                return ForwardState::PartialOverlap;
            }
        }
        ForwardState::NoMatch
    }

    // ----------------------------------------------------------- dispatch

    fn dispatch(&mut self) {
        let mut dispatched = 0;
        while dispatched < self.cfg.issue_width {
            let Some(front) = self.fe_queue.front() else { break };
            if front.fetch_cycle + self.cfg.pipeline_depth > self.cycle {
                break;
            }
            let needed = self.rob_slots_needed(front);
            if self.rob.len() + needed > self.cfg.rob_size {
                break;
            }
            let f = self.fe_queue.pop_front().expect("checked non-empty");
            self.rename_into_rob(f);
            dispatched += needed;
        }
    }

    fn rob_slots_needed(&self, f: &FetchedUop) -> usize {
        if self.cfg.pred_mechanism == PredMechanism::SelectUop
            && f.guard_pred_elim.is_none()
            && self.decoded.pcs[f.pc as usize].select_expandable
        {
            2
        } else {
            1
        }
    }

    /// Pushes one ROB entry whose dependences are in `dep_scratch`:
    /// registers it as a waiter on each not-yet-ready producer (duplicates
    /// register — and later decrement — once each, so no dedup is needed)
    /// and enrolls it in the scheduling lists it belongs to.
    fn push_rob(&mut self, f: FetchedUop, role: Role) -> u64 {
        if self.trace.is_some() {
            self.trace_event(crate::trace::TraceKind::Dispatch, f.seq, f.pc, &f.insn, 0);
        }
        let id = self.next_rob_id;
        self.next_rob_id += 1;
        let mut unready = 0u32;
        let front_id = self.rob.front().map(|e| e.id);
        let scratch = std::mem::take(&mut self.dep_scratch);
        for &d in &scratch {
            let Some(fid) = front_id else {
                continue; // empty window: every producer retired
            };
            if d < fid {
                continue; // producer retired
            }
            let idx = (d - fid) as usize;
            let value_ready = match self.rob.get(idx) {
                Some(p) => p.done && p.ready_cycle <= self.cycle,
                None => true,
            };
            if value_ready {
                continue;
            }
            let p = &mut self.rob[idx];
            if p.waiters.will_spill() && p.waiters.spill.capacity() == 0 {
                if let Some(v) = self.waiter_pool.pop() {
                    p.waiters.spill = v;
                }
            }
            p.waiters.push(id);
            unready += 1;
        }
        self.dep_scratch = scratch;
        let is_store = matches!(f.insn.kind, InsnKind::Store { .. });
        let unresolved = role == Role::Whole && (f.insn.is_branch() || f.pred_check.is_some());
        self.rob.push_back(RobEntry {
            id,
            f,
            role,
            unready,
            waiters: WaiterList::default(),
            issued: false,
            done: false,
            ready_cycle: 0,
            resolved: false,
            loop_class: None,
            mispredicted: false,
        });
        if unready == 0 {
            self.ready.push(Reverse(id));
        }
        if is_store {
            self.store_queue.push_back(id);
        }
        if unresolved {
            self.unresolved.push(id);
        }
        id
    }

    fn guard_dep(&self, f: &FetchedUop, oracles: &OracleConfig) -> GuardPlan {
        let Some(g) = f.insn.guard else {
            return GuardPlan::None;
        };
        if oracles.no_pred_dependencies {
            return GuardPlan::Known(f.info.guard_true);
        }
        if let Some(v) = f.guard_pred_elim {
            return GuardPlan::Known(v);
        }
        match self.pred_prod[g.index()] {
            Some(id) => {
                // Predicate-prediction baseline: if the producer's value was
                // predicted at fetch, consumers run with the predicted value
                // instead of waiting (verified at the producer's execution).
                if self.cfg.predicate_prediction {
                    if let Some(front) = self.rob.front() {
                        if id >= front.id {
                            let idx = (id - front.id) as usize;
                            assert!(idx < self.rob.len(), "producer id {id} front {} len {}", front.id, self.rob.len());
                            let p = &self.rob[idx];
                            if let Some(predicted) = p.f.pred_check {
                                let defs = self.decoded.pcs[p.f.pc as usize].def_preds;
                                if defs[0] == Some(g) {
                                    return GuardPlan::Known(predicted);
                                }
                                if defs[1] == Some(g) {
                                    return GuardPlan::Known(!predicted);
                                }
                            }
                        }
                    }
                }
                GuardPlan::Wait(id)
            }
            None => GuardPlan::Ready,
        }
    }

    /// Appends the data-source dependences (registers + predicate sources)
    /// to `dep_scratch`.
    fn push_src_deps(&mut self, info: &PcInfo, oracles: &OracleConfig) {
        for r in info.gpr_srcs.into_iter().flatten() {
            if let Some(id) = self.gpr_prod[r.index()] {
                self.dep_scratch.push(id);
            }
        }
        for p in info.pred_srcs.into_iter().flatten() {
            // §3.5.3: the elimination buffer satisfies predicate *data*
            // sources of non-branch µops too (e.g. the re-ANDing `pand`s in
            // predicated arms) — but never a branch's own condition, which
            // must still be verified.
            let eliminated = !info.is_branch
                && self.pred_elim_active()
                && self.pred_elim[p.index()].is_some();
            if oracles.no_pred_dependencies && !info.is_branch {
                continue;
            }
            if eliminated {
                continue;
            }
            if let Some(id) = self.pred_prod[p.index()] {
                self.dep_scratch.push(id);
            }
        }
    }

    /// Appends the old-destination dependences (C-style reads the old
    /// value) to `dep_scratch`.
    fn push_old_dest_deps(&mut self, info: &PcInfo) {
        if let Some(d) = info.def_gpr {
            if let Some(id) = self.gpr_prod[d.index()] {
                self.dep_scratch.push(id);
            }
        }
        for p in info.def_preds.into_iter().flatten() {
            if let Some(id) = self.pred_prod[p.index()] {
                self.dep_scratch.push(id);
            }
        }
    }

    fn rename_into_rob(&mut self, f: FetchedUop) {
        let oracles = self.cfg.oracles;
        let info = self.decoded.pcs[f.pc as usize];
        let select_expand = self.rob_slots_needed(&f) == 2;
        let guard = self.guard_dep(&f, &oracles);
        // Old-destination reads exist only for guarded µops outside the
        // NO-PRED-DEP oracle (the historical outer gate on that list).
        let wants_old_dest =
            (f.insn.guard.is_some() || f.hw_guard.is_some()) && !oracles.no_pred_dependencies;

        // A µop whose guard is *known* false at rename (oracle knob or the
        // §3.5.3 elimination buffer) is a pure NOP: it must not become the
        // rename-map producer of its destinations, or consumers would see
        // the old value re-timestamped as fresh (breaking — or worse,
        // artificially shortening — accumulator dependence chains).
        let known_false = matches!(guard, GuardPlan::Known(false));
        let update_maps = |sim: &mut Self, id: u64| {
            if known_false {
                return;
            }
            if let Some(d) = info.def_gpr {
                sim.gpr_prod[d.index()] = Some(id);
            }
            for p in info.def_preds.into_iter().flatten() {
                if !p.is_hardwired_true() {
                    sim.pred_prod[p.index()] = Some(id);
                }
            }
        };

        if select_expand {
            // Compute part: sources only, no guard, no old destination.
            self.dep_scratch.clear();
            self.push_src_deps(&info, &oracles);
            let compute_id = self.push_rob(f, Role::Compute);
            // Select part: compute result + guard + old destination.
            self.dep_scratch.clear();
            self.dep_scratch.push(compute_id);
            match guard {
                GuardPlan::Wait(id) => self.dep_scratch.push(id),
                GuardPlan::None | GuardPlan::Ready | GuardPlan::Known(_) => {}
            }
            if wants_old_dest {
                self.push_old_dest_deps(&info);
            }
            let select_id = self.push_rob(f, Role::Select);
            update_maps(self, select_id);
            return;
        }

        // C-style single µop (or a non-expandable guarded store/branch).
        self.dep_scratch.clear();
        // Hardware-injected (DHP) guard dependence.
        if let Some((p, _)) = f.hw_guard {
            if !oracles.no_pred_dependencies {
                if let Some(id) = self.pred_prod[p.index()] {
                    self.dep_scratch.push(id);
                }
            }
        }
        match guard {
            GuardPlan::Wait(id) => {
                self.dep_scratch.push(id);
                self.push_src_deps(&info, &oracles);
                if wants_old_dest {
                    self.push_old_dest_deps(&info);
                }
            }
            GuardPlan::Known(true) => self.push_src_deps(&info, &oracles),
            GuardPlan::Known(false) => {
                if wants_old_dest {
                    self.push_old_dest_deps(&info);
                }
            }
            GuardPlan::None | GuardPlan::Ready => {
                self.push_src_deps(&info, &oracles);
                if wants_old_dest {
                    self.push_old_dest_deps(&info);
                }
            }
        }
        let id = self.push_rob(f, Role::Whole);
        update_maps(self, id);
    }

    fn pred_elim_active(&self) -> bool {
        matches!(self.mode, Mode::HighConf) && self.pred_elim_live > 0
    }

    fn pred_elim_insert(&mut self, index: usize, value: bool) {
        if self.pred_elim[index].is_none() {
            self.pred_elim_live += 1;
        }
        self.pred_elim[index] = Some(value);
    }

    // -------------------------------------------------------------- fetch

    fn fetch(&mut self) {
        if self.fetch_blocked || self.cycle < self.fetch_stall_until {
            return;
        }
        let queue_cap = self.fetch_queue_cap;
        let mut budget = self.cfg.fetch_width;
        let mut cond_budget = self.cfg.max_cond_branches_per_cycle;
        while budget > 0 && self.fe_queue.len() < queue_cap {
            // Mode exit on reaching the low-confidence region's join target.
            if let Mode::LowConf {
                exit_target: Some(t),
                ..
            } = self.mode
            {
                if self.fetch_pc == t {
                    self.mode = Mode::Normal;
                }
            }
            let Some(info) = self.decoded.pcs.get(self.fetch_pc as usize) else {
                // Wrong-path fetch escaped the image; wait for the flush.
                self.fetch_blocked = true;
                return;
            };
            let insn = info.insn;
            let line = info.line;
            let is_cond_branch = info.is_cond_branch;
            let is_halt = info.is_halt;
            // I-cache.
            if !fetch_line_gate(
                &mut self.mem,
                &mut self.fetch_line,
                &mut self.fetch_stall_until,
                &mut self.fetch_stall_reason,
                self.cfg.mem.icache.latency,
                self.fetch_pc,
                line,
                self.cycle,
            ) {
                return;
            }

            let pc = self.fetch_pc;
            // Dynamic hammock predication: advance the guard-injection
            // state machine before fetching this µop.
            match self.dhp {
                DhpState::GuardFall {
                    pred,
                    negated,
                    cond,
                    until,
                    then,
                } => {
                    if pc >= until {
                        match then {
                            Some((taken_start, taken_until, skip_to)) => {
                                // Redirect into the taken arm under the
                                // complement guard.
                                self.fetch_pc = taken_start;
                                self.dhp = DhpState::GuardTaken {
                                    pred,
                                    negated: !negated,
                                    cond,
                                    until: taken_until,
                                    skip_to,
                                };
                                continue;
                            }
                            None => self.dhp = DhpState::Off,
                        }
                    }
                }
                DhpState::GuardTaken { until, skip_to, .. } => {
                    if pc >= until {
                        self.dhp = DhpState::Off;
                        if let Some(j) = skip_to {
                            // Hardware squashes the arm's trailing jump and
                            // resumes at the join.
                            self.fetch_pc = j;
                            continue;
                        }
                    }
                }
                DhpState::Off => {}
            }
            if is_cond_branch {
                if cond_budget == 0 {
                    return; // next cycle
                }
                cond_budget -= 1;
            }
            let fetched = self.fetch_one(pc, insn);
            budget -= 1;
            let taken_redirect = fetched.info.followed_next != pc + 1;
            self.fetch_pc = fetched.info.followed_next;

            // NO-FETCH oracle: guard-false µops vanish before taking any
            // bandwidth (they also don't count against the fetch budget).
            let skip = self.cfg.oracles.no_false_predicate_fetch
                && !fetched.info.guard_true
                && insn.guard.is_some()
                && !insn.is_branch();
            if skip {
                budget += 1;
                self.stats.fetched_uops += 1;
                continue;
            }
            self.stats.fetched_uops += 1;
            self.fe_queue.push_back(fetched);

            if is_halt {
                self.fetch_blocked = true;
                return;
            }
            if taken_redirect {
                // Fetch ends at the first taken branch (Table 2).
                return;
            }
        }
    }

    /// Processes one µop at fetch: predictions, wish-branch mode logic,
    /// speculative emulation, front-end table updates.
    fn fetch_one(&mut self, pc: u32, insn: Insn) -> FetchedUop {
        let seq = self.next_seq;
        self.next_seq += 1;

        // Predicate-dependency elimination lookup (before this µop's own
        // writes invalidate entries).
        let guard_pred_elim = match insn.guard {
            Some(g) if self.pred_elim_active() && !insn.is_branch() => self.pred_elim[g.index()],
            _ => None,
        };

        #[allow(unused_mut)]
        let mut br_meta: Option<BrMeta> = None;
        let mut forced_next: Option<u32> = None;

        if let InsnKind::Branch { kind, target } = insn.kind {
            let ghr_checkpoint = self.bp.ghr();
            let fetch_mode = self.mode;
            let mut meta = BrMeta {
                predicted_taken: false,
                predicted_next: pc + 1,
                bp_token: None,
                predictor_said_taken: false,
                ghr_checkpoint,
                conf_ghr: ghr_checkpoint,
                ras_checkpoint: self.ras.checkpoint(),
                conf_high: None,
                fetch_mode,
                loop_token: None,
                dhp: false,
            };
            match kind {
                BranchKind::Cond { .. } => {
                    let (dir, token) = self.predict_cond(pc, &insn, &mut meta);
                    meta.predicted_taken = dir;
                    meta.bp_token = token;
                    meta.predicted_next = if dir { target } else { pc + 1 };
                    self.bp.on_fetch_branch(dir);
                    self.btb_note(pc, BtbKind::Cond, target, insn.wish, dir);
                }
                BranchKind::Uncond => {
                    meta.predicted_taken = true;
                    meta.predicted_next = target;
                    self.btb_note(pc, BtbKind::Uncond, target, None, true);
                }
                BranchKind::Call => {
                    meta.predicted_taken = true;
                    meta.predicted_next = target;
                    self.ras.push(pc + 1);
                    meta.ras_checkpoint = self.ras.checkpoint();
                    self.btb_note(pc, BtbKind::Call, target, None, true);
                }
                BranchKind::Ret => {
                    let predicted = self
                        .ras
                        .pop()
                        .or_else(|| self.itc.predict(pc, self.bp.ghr()))
                        .unwrap_or(0);
                    meta.predicted_taken = true;
                    meta.predicted_next = predicted;
                    meta.ras_checkpoint = self.ras.checkpoint();
                    self.btb_note(pc, BtbKind::Ret, predicted, None, true);
                }
                BranchKind::Indirect { .. } => {
                    let predicted = self.itc.predict(pc, self.bp.ghr()).unwrap_or(pc + 1);
                    meta.predicted_taken = true;
                    meta.predicted_next = predicted;
                    self.btb_note(pc, BtbKind::Indirect, predicted, None, true);
                }
            }
            if self.cfg.oracles.perfect_branch_prediction {
                // PERFECT-CBP: override everything with the oracle.
                let actual = self.emu.peek_cond(&insn);
                match kind {
                    BranchKind::Cond { .. } => {
                        let t = actual.expect("cond branch peeks");
                        meta.predicted_taken = t;
                        meta.predicted_next = if t { target } else { pc + 1 };
                        meta.bp_token = None;
                        meta.conf_high = None;
                    }
                    _ => {
                        // Target oracles for ret/indirect.
                        meta.predicted_next = self.peek_target(&insn, pc);
                    }
                }
            }
            forced_next = Some(meta.predicted_next);
            br_meta = Some(meta);
        }

        // DHP: non-control µops inside an active region carry the injected
        // guard (register for dependence tracking, captured value for the
        // architectural decision).
        let (hw_guard, hw_guard_ok) = if insn.is_branch() {
            (None, None)
        } else {
            match self.dhp {
                DhpState::GuardFall {
                    pred,
                    negated,
                    cond,
                    ..
                }
                | DhpState::GuardTaken {
                    pred,
                    negated,
                    cond,
                    ..
                } => (Some((pred, negated)), Some(cond ^ negated)),
                DhpState::Off => (None, None),
            }
        };
        // Predicate prediction (Chuang & Calder baseline): predict the
        // value every predicate-defining µop will produce, and checkpoint
        // for the flush its verification may trigger.
        let mut pred_check = None;
        if self.cfg.predicate_prediction
            && self.decoded.pcs[pc as usize].defines_pred
            && br_meta.is_none()
        {
            let counter = self.pred_value_pht[pc as usize];
            pred_check = Some(counter >= 2);
            br_meta = Some(BrMeta {
                predicted_taken: false,
                predicted_next: pc + 1,
                bp_token: None,
                predictor_said_taken: false,
                ghr_checkpoint: self.bp.ghr(),
                conf_ghr: self.conf_history,
                ras_checkpoint: self.ras.checkpoint(),
                conf_high: None,
                fetch_mode: self.mode,
                loop_token: None,
                dhp: false,
            });
        }

        let info = self.emu.exec(seq, pc, &insn, forced_next, hw_guard_ok);

        // Front-end table maintenance after the µop is "decoded".
        self.note_pred_writes(pc);

        if self.trace.is_some() {
            self.trace_event(crate::trace::TraceKind::Fetch, seq, pc, &insn, 0);
        }
        FetchedUop {
            seq,
            pc,
            insn,
            info,
            fetch_cycle: self.cycle,
            br: br_meta,
            guard_pred_elim,
            hw_guard,
            pred_check,
        }
    }

    /// Oracle target of a control µop (for PERFECT-CBP on ret/indirect).
    fn peek_target(&self, insn: &Insn, pc: u32) -> u32 {
        match insn.kind {
            InsnKind::Branch { kind, target } => match kind {
                BranchKind::Ret => self.emu.regs[Gpr::LINK.index()] as u32,
                BranchKind::Indirect { target: r } => self.emu.regs[r.index()] as u32,
                _ => target,
            },
            _ => pc + 1,
        }
    }

    /// Direction prediction for a conditional branch, including all wish
    /// branch mode logic (§3.1, §3.2, Table 1, Fig. 8).
    fn predict_cond(
        &mut self,
        pc: u32,
        insn: &Insn,
        meta: &mut BrMeta,
    ) -> (bool, Option<HybridToken>) {
        let (mut bp_dir, token) = self.bp.predict(pc);
        meta.predictor_said_taken = bp_dir;
        meta.conf_ghr = self.conf_history;
        let wish = insn.wish.filter(|_| self.cfg.wish_enabled);
        let Some(wtype) = wish else {
            // Dynamic hammock predication for plain conditional branches:
            // on a low-confidence prediction of an eligible hammock, force
            // not-taken, inject guards, and never flush.
            if self.cfg.dhp_enabled && self.dhp == DhpState::Off {
                if let Some(plan) = self.dhp_region(pc) {
                    let low = if self.cfg.oracles.perfect_confidence {
                        let actual = self.emu.peek_cond(insn).expect("cond branch");
                        bp_dir != actual
                    } else {
                        !self.jrs.estimate(pc, self.conf_history).is_high()
                    };
                    meta.conf_high = Some(!low);
                    if low {
                        meta.dhp = true;
                        self.dhp = plan;
                        self.stats.dhp_predications += 1;
                        return (false, Some(token));
                    }
                }
            }
            return (bp_dir, Some(token));
        };
        // Specialized wish-loop predictor (§3.2 extension): overrides the
        // hybrid's direction when it has a confident trip prediction.
        if wtype == WishType::Loop {
            if let Some(lp) = self.loop_pred.as_mut() {
                let (pred, ltok) = lp.fetch_predict(pc);
                meta.loop_token = Some(ltok);
                if let Some(dir) = pred {
                    bp_dir = dir;
                    meta.predictor_said_taken = dir;
                }
            }
        }

        // Track the front-end last-prediction buffer for wish loops before
        // the direction is finalized below.
        let mut final_dir = bp_dir;

        match self.mode {
            Mode::LowConf {
                exit_target,
                loop_pc,
            } => {
                match wtype {
                    WishType::Jump | WishType::Join => {
                        // Fig. 8 has no LowConf→HighConf edge: while in
                        // low-confidence mode every wish jump/join is
                        // forced not-taken (Table 1).
                        final_dir = false;
                        meta.conf_high = Some(false);
                        // A jump fetched in low-conf mode starts its own
                        // region; keep the earlier exit target if any,
                        // otherwise adopt this branch's.
                        if exit_target.is_none() {
                            if let Some(t) = insn.direct_target() {
                                self.mode = Mode::LowConf {
                                    exit_target: Some(t),
                                    loop_pc,
                                };
                            }
                        }
                    }
                    WishType::Loop => {
                        // Predicate not predicted; direction still comes
                        // from the predictor. The "wish loop is exited"
                        // mode edge is applied uniformly below.
                        meta.conf_high = Some(false);
                    }
                }
                // The branch operates under low-confidence mode (§3.5.4:
                // recovery checks the mode the branch was fetched *under*).
                meta.fetch_mode = Mode::LowConf {
                    exit_target,
                    loop_pc,
                };
            }
            Mode::Normal | Mode::HighConf => {
                let high = if self.cfg.oracles.perfect_confidence {
                    let actual = self.emu.peek_cond(insn).expect("cond branch");
                    bp_dir == actual
                } else {
                    self.jrs.estimate(pc, meta.conf_ghr).is_high()
                };
                meta.conf_high = Some(high);
                if high {
                    self.mode = Mode::HighConf;
                    self.install_pred_elim(insn, bp_dir);
                } else {
                    match wtype {
                        WishType::Jump | WishType::Join => {
                            final_dir = false;
                            self.mode = Mode::LowConf {
                                exit_target: insn.direct_target(),
                                loop_pc: None,
                            };
                        }
                        WishType::Loop => {
                            self.mode = Mode::LowConf {
                                exit_target: None,
                                loop_pc: Some(pc),
                            };
                        }
                    }
                }
                // A branch that causes a mode transition operates under the
                // mode it causes: a low-confidence estimate means this very
                // branch is executed in predicated fashion and must not
                // flush (§3.1).
                meta.fetch_mode = self.mode;
            }
        }
        if wtype == WishType::Loop {
            self.loop_last_pred[pc as usize] = Some((final_dir, self.next_seq - 1));
            // Fig. 8's "wish loop is exited": a not-taken prediction ends
            // this loop's mode no matter when it arrives — including a
            // *first* prediction that is already not-taken (a predicted
            // zero-trip loop, whose body is never fetched). The branch
            // itself still recovers under the mode it was fetched in
            // (`meta.fetch_mode`).
            if !final_dir {
                match self.mode {
                    Mode::HighConf => self.mode = Mode::Normal,
                    Mode::LowConf {
                        loop_pc: Some(lp), ..
                    } if lp == pc => self.mode = Mode::Normal,
                    _ => {}
                }
            }
        }
        (final_dir, Some(token))
    }

    /// Installs the §3.5.3 predicate prediction for a high-confidence wish
    /// branch: the branch's own condition register gets the predicted
    /// value, and (via the decode-time cmp2 pairing table) its complement
    /// partner gets the inverse.
    fn install_pred_elim(&mut self, insn: &Insn, predicted_dir: bool) {
        let InsnKind::Branch {
            kind: BranchKind::Cond { pred, sense },
            ..
        } = insn.kind
        else {
            return;
        };
        let value = if sense { predicted_dir } else { !predicted_dir };
        self.pred_elim_insert(pred.index(), value);
        if let Some(partner) = self.cmp2_partner[pred.index()] {
            self.pred_elim_insert(partner as usize, !value);
        }
    }

    /// Decode-time predicate bookkeeping: cmp2 pairings, and invalidation
    /// of elimination-buffer entries when their register is redefined
    /// (§3.5.3).
    fn note_pred_writes(&mut self, pc: u32) {
        let info = &self.decoded.pcs[pc as usize];
        let def_preds = info.def_preds;
        let is_cmp2 = info.is_cmp2;
        if is_cmp2 {
            let t = def_preds[0].expect("cmp2 defines two predicates").index();
            let f = def_preds[1].expect("cmp2 defines two predicates").index();
            self.cmp2_partner[t] = Some(f as u8);
            self.cmp2_partner[f] = Some(t as u8);
        }
        for p in def_preds.into_iter().flatten() {
            if self.pred_elim[p.index()].take().is_some() {
                self.pred_elim_live -= 1;
            }
            if !is_cmp2 {
                self.cmp2_partner[p.index()] = None;
            }
        }
        if matches!(self.mode, Mode::HighConf) && self.pred_elim_live == 0 {
            self.mode = Mode::Normal;
        }
    }

    /// The DHP guard-injection state for the conditional branch at `pc`,
    /// if it guards an eligible hammock: the static plan comes from the
    /// pre-decoded table, the condition register's architectural value is
    /// captured now — the guarded arms may redefine the register itself.
    fn dhp_region(&self, pc: u32) -> Option<DhpState> {
        let plan = self.decoded.dhp_plans[pc as usize]?;
        Some(DhpState::GuardFall {
            pred: plan.pred,
            negated: plan.negated,
            cond: self.emu.preds[plan.pred.index()],
            until: plan.until,
            then: plan.then,
        })
    }

    fn btb_note(
        &mut self,
        pc: u32,
        kind: BtbKind,
        target: u32,
        wish: Option<WishType>,
        redirects: bool,
    ) {
        let hit = self.btb.lookup(pc).is_some();
        if !hit {
            self.btb.install(pc, BtbEntry { target, kind, wish });
            if redirects {
                // Target only known after decode: charge a fetch bubble.
                self.fetch_stall_until = self.cycle + self.cfg.btb_miss_penalty;
                self.fetch_stall_reason = StallReason::Redirect;
            }
        }
    }
}

/// Why the fetch stage is stalled (`fetch_stall_until` armed).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum StallReason {
    /// I-cache miss in flight.
    IMiss,
    /// Redirect bubble: post-flush resteer or BTB-miss target bubble.
    Redirect,
}

/// Shared fetch-stage I-cache gate used by both the scalar and the batched
/// core: given the line the next µop lives on, decide whether fetch can
/// proceed this cycle and arm the I-miss stall if not.
///
/// Under the flat model this is the legacy behaviour: access the I-cache,
/// latch the line, and stall for the returned latency when it exceeds an
/// L1-I hit. Under the non-blocking model the access goes through the
/// I-side MSHRs: a `Pending` fill stalls fetch until the fill cycle (the
/// line is latched so the post-fill resume does not re-access), and an
/// `MshrFull` refusal retries next cycle without latching — no request
/// was issued, so the retry must re-access.
///
/// Returns `true` when the line is available and fetch may consume the
/// µop this cycle.
#[allow(clippy::too_many_arguments)]
pub(crate) fn fetch_line_gate(
    mem: &mut MemoryHierarchy,
    fetch_line: &mut Option<u64>,
    fetch_stall_until: &mut u64,
    fetch_stall_reason: &mut StallReason,
    icache_hit_latency: u64,
    fetch_pc: u32,
    line: u64,
    cycle: u64,
) -> bool {
    if *fetch_line == Some(line) {
        return true;
    }
    if mem.realistic() {
        match mem.fetch_access_nonblocking(insn_addr(fetch_pc), cycle) {
            AccessOutcome::Ready(_) => {
                *fetch_line = Some(line);
                true
            }
            AccessOutcome::Pending(fill_at) => {
                *fetch_line = Some(line);
                *fetch_stall_until = fill_at;
                *fetch_stall_reason = StallReason::IMiss;
                false
            }
            AccessOutcome::MshrFull | AccessOutcome::PortBusy => {
                // No request left the fetch stage: retry next cycle.
                *fetch_stall_until = cycle + 1;
                *fetch_stall_reason = StallReason::IMiss;
                false
            }
        }
    } else {
        let lat = mem.fetch_access_at(insn_addr(fetch_pc), cycle);
        *fetch_line = Some(line);
        if lat > icache_hit_latency {
            *fetch_stall_until = cycle + lat;
            *fetch_stall_reason = StallReason::IMiss;
            false
        } else {
            true
        }
    }
}

/// Store-to-load-forwarding verdict for a ready load (see
/// `Simulator::forward_state`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum ForwardState {
    /// Fully covered by the youngest older overlapping store whose data
    /// is ready: take the value from the store queue at L1-hit latency.
    Forward,
    /// Partially covered: conservative replay — wait until the store
    /// drains and read from the cache.
    PartialOverlap,
    /// No older in-flight store overlaps (or forwarding is off).
    NoMatch,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub(crate) enum GuardPlan {
    /// Unguarded.
    None,
    /// Guarded; producer already retired (value architecturally ready).
    Ready,
    /// Guarded; wait on this ROB producer.
    Wait(u64),
    /// Guarded; value known at rename (oracle or §3.5.3 elimination).
    Known(bool),
}
