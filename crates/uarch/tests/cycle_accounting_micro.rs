//! Micro-level checks of the cycle-accounting layer: the `sum == cycles`
//! identity, the fetch-idle split identity, and qualitative category
//! behavior on hand-built programs. (The suite-wide identity over every
//! benchmark × variant lives in the workspace-level
//! `tests/cycle_accounting.rs`.)

use wishbranch_isa::{AluOp, CmpOp, Gpr, Insn, Operand, PredReg, Program, ProgramBuilder};
use wishbranch_uarch::{MachineConfig, SimResult, Simulator};

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

fn run(program: &Program, cfg: MachineConfig) -> SimResult {
    let mut sim = Simulator::new(program, cfg);
    sim.run().expect("halts")
}

fn assert_identities(res: &SimResult) {
    let s = &res.stats;
    assert_eq!(
        s.cycle_accounting.total(),
        s.cycles,
        "cycle accounting must cover every cycle exactly once: {:?}",
        s.cycle_accounting
    );
    assert_eq!(
        s.fetch_idle_imiss + s.fetch_idle_redirect + s.fetch_idle_queue_full + s.fetch_idle_blocked,
        s.fetch_idle_cycles,
        "fetch-idle split must cover every fetch-idle cycle"
    );
    let flushes: u64 = s.hot_sites.values().map(|c| c.flushes).sum();
    let avoided: u64 = s.hot_sites.values().map(|c| c.flushes_avoided).sum();
    let gf: u64 = s.hot_sites.values().map(|c| c.guard_false_uops).sum();
    assert_eq!(flushes, s.flushes, "per-site flushes must sum to the total");
    assert_eq!(avoided, s.flushes_avoided, "per-site avoided flushes must sum");
    assert_eq!(gf, s.retired_guard_false, "per-site guard-false µops must sum");
}

/// A loop whose body holds one pseudo-random (hard-to-predict) hammock
/// branch; returns (program, hammock branch pc, loop-back branch pc).
fn alternating_branch_loop(trips: i32) -> (Program, u32, u32) {
    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let skip = b.label("skip");
    b.push(Insn::mov_imm(r(1), 0)); // pc 0: i = 0
    b.push(Insn::mov_imm(r(2), 0)); // pc 1: acc = 0
    b.bind(top);
    // if ((i*37 ^ i>>2) & 7 < 3) acc += 1 — direction is effectively random.
    b.push(Insn::alu(AluOp::Mul, r(4), r(1), Operand::imm(37))); // pc 2
    b.push(Insn::alu(AluOp::Xor, r(4), r(4), Operand::imm(21))); // pc 3
    b.push(Insn::alu(AluOp::And, r(4), r(4), Operand::imm(7))); // pc 4
    b.push(Insn::cmp(CmpOp::Ge, PredReg::new(1), r(4), Operand::imm(3))); // pc 5
    let hammock_pc = 6;
    b.push_cond_branch(PredReg::new(1), true, skip, None); // pc 6
    b.push(Insn::alu(AluOp::Add, r(2), r(2), Operand::imm(1))); // pc 7
    b.bind(skip);
    b.push(Insn::alu(AluOp::Add, r(1), r(1), Operand::imm(1))); // pc 8
    b.push(Insn::cmp(CmpOp::Lt, PredReg::new(2), r(1), Operand::imm(trips))); // pc 9
    let back_pc = 10;
    b.push_cond_branch(PredReg::new(2), true, top, None); // pc 10
    b.push(Insn::halt()); // pc 11
    (b.build(), hammock_pc, back_pc)
}

#[test]
fn straight_line_program_is_mostly_useful_retire() {
    let mut insns = vec![Insn::mov_imm(r(1), 0)];
    for i in 0..64u8 {
        insns.push(Insn::alu(AluOp::Add, r(1 + i % 8), r(1), Operand::imm(1)));
    }
    insns.push(Insn::halt());
    let res = run(&Program::from_insns(insns), MachineConfig::default());
    assert_identities(&res);
    let acc = res.stats.cycle_accounting;
    assert!(acc.useful_retire > 0, "useful work must be attributed: {acc:?}");
    assert_eq!(acc.flush_recovery, 0, "no branches, no flushes: {acc:?}");
    assert_eq!(acc.guard_false_retire, 0, "nothing predicated: {acc:?}");
}

#[test]
fn hard_to_predict_branch_accrues_flush_recovery_and_hot_site() {
    let (prog, hammock_pc, back_pc) = alternating_branch_loop(97);
    let res = run(&prog, MachineConfig::default());
    assert_identities(&res);
    let s = &res.stats;
    assert!(s.flushes > 0, "alternating branch must flush at least once");
    assert!(
        s.cycle_accounting.flush_recovery > 0,
        "flushes must surface as flush-recovery cycles: {:?}",
        s.cycle_accounting
    );
    let site = s.hot_sites.get(&hammock_pc).copied().unwrap_or_default();
    let back = s.hot_sites.get(&back_pc).copied().unwrap_or_default();
    assert!(
        site.flushes + back.flushes > 0,
        "flushes must be attributed to the branch PCs, got sites {:?}",
        s.hot_sites
    );
}

/// 16 independent cold loads, 4 KiB apart (distinct lines and sets).
fn scattered_load_program() -> Program {
    let mut insns = vec![Insn::mov_imm(r(1), 0x2_0000)];
    for k in 0..16u8 {
        insns.push(Insn::load(r(2 + k % 8), r(1), i32::from(k) * 4096));
    }
    insns.push(Insn::halt());
    Program::from_insns(insns)
}

#[test]
fn tight_mshr_files_accrue_mshr_full_cycles() {
    let mut cfg = MachineConfig::default();
    cfg.mem.realistic = true;
    cfg.mem.l1_mshrs = 1;
    cfg.mem.l2_mshrs = 1;
    let res = run(&scattered_load_program(), cfg);
    assert_identities(&res);
    let acc = res.stats.cycle_accounting;
    assert!(
        acc.mshr_full > 0,
        "16 misses against 1 MSHR must stall on allocation: {acc:?}"
    );
    assert!(
        res.stats.mshr_full_stalls > 0,
        "refused issues must be counted"
    );
}

#[test]
fn outstanding_fills_accrue_miss_pending_cycles() {
    let mut cfg = MachineConfig::default();
    cfg.mem.realistic = true;
    let res = run(&scattered_load_program(), cfg);
    assert_identities(&res);
    let acc = res.stats.cycle_accounting;
    assert!(
        acc.miss_pending > 0,
        "cycles spent waiting on in-flight fills must be attributed: {acc:?}"
    );
    assert_eq!(
        acc.mshr_full, 0,
        "default MSHR files are ample for 16 misses: {acc:?}"
    );
}

#[test]
fn flat_model_never_reports_hierarchy_causes() {
    let res = run(&scattered_load_program(), MachineConfig::default());
    assert_identities(&res);
    let acc = res.stats.cycle_accounting;
    assert_eq!(
        (acc.mshr_full, acc.miss_pending),
        (0, 0),
        "hierarchy causes are structurally zero under the flat model: {acc:?}"
    );
    assert_eq!(res.stats.mshr_full_stalls, 0);
}

#[test]
fn top_sites_ranks_by_activity_and_truncates() {
    let (prog, _, _) = alternating_branch_loop(50);
    let res = run(&prog, MachineConfig::default());
    assert_identities(&res);
    let sites = res.stats.top_sites(2);
    assert!(sites.len() <= 2, "top_sites must truncate to n");
    if sites.len() == 2 {
        assert!(
            sites[0].1.score() >= sites[1].1.score(),
            "top_sites must be sorted by score"
        );
    }
    assert!(
        !res.stats.top_sites(100).is_empty(),
        "a flushing run must populate the hot-site table"
    );
}
