//! Focused timing microtests: each isolates one latency mechanism of the
//! Table 2 machine and checks its first-order cycle cost.

use wishbranch_isa::{AluOp, Gpr, Insn, Operand, Program};
use wishbranch_uarch::{MachineConfig, Simulator};

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

/// Table 2 machine with an ideal memory system (all latencies collapse to
/// the L1 hit time) — isolates core timing from cold-cache effects.
fn ideal_mem_cfg() -> MachineConfig {
    let mut cfg = MachineConfig::default();
    cfg.mem.memory_latency = 0;
    cfg.mem.l2.latency = 0;
    cfg
}

fn run(program: &Program, cfg: MachineConfig, mem: &[(u64, i64)]) -> wishbranch_uarch::SimResult {
    let mut sim = Simulator::new(program, cfg);
    for &(a, v) in mem {
        sim.preload_mem(a, v);
    }
    sim.run().expect("halts")
}

#[test]
fn serial_dependence_chain_costs_one_cycle_per_link() {
    // 64 chained adds: cycles must grow by ~1 per added link beyond the
    // pipeline fill.
    let build = |links: usize| {
        let mut insns = vec![Insn::mov_imm(r(1), 0)];
        for _ in 0..links {
            insns.push(Insn::alu(AluOp::Add, r(1), r(1), Operand::imm(1)));
        }
        insns.push(Insn::halt());
        Program::from_insns(insns)
    };
    let cfg = ideal_mem_cfg();
    let short = run(&build(32), cfg.clone(), &[]).stats.cycles;
    let long = run(&build(96), cfg, &[]).stats.cycles;
    let delta = long - short;
    assert!(
        (60..=76).contains(&delta),
        "64 extra chain links must cost ~64 cycles, got {delta}"
    );
}

#[test]
fn independent_ops_run_at_issue_width() {
    // 256 independent adds over 8 registers: ~8 per cycle.
    let mut insns = Vec::new();
    for i in 0..8u8 {
        insns.push(Insn::mov_imm(r(1 + i), 0));
    }
    for k in 0u16..256 {
        let d = r(1 + (k % 8) as u8);
        insns.push(Insn::alu(AluOp::Add, d, d, Operand::imm(1)));
    }
    insns.push(Insn::halt());
    let res = run(&Program::from_insns(insns), ideal_mem_cfg(), &[]);
    // 8 chains of 32 links each → ≥32 cycles of execution; fetch supplies
    // 8/cycle → the whole thing retires within the fill + ~60 cycles.
    let exec_cycles = res.stats.cycles - MachineConfig::default().pipeline_depth;
    assert!(
        exec_cycles < 80,
        "independent work must overlap: {} cycles after fill",
        exec_cycles
    );
}

#[test]
fn cold_load_pays_full_hierarchy_latency() {
    let insns = vec![
        Insn::mov_imm(r(1), 0x10000),
        Insn::load(r(2), r(1), 0),
        Insn::alu(AluOp::Add, r(3), r(2), Operand::imm(1)), // dependent
        Insn::halt(),
    ];
    let cfg = MachineConfig::default();
    let cold = run(&Program::from_insns(insns.clone()), cfg.clone(), &[(0x10000, 7)]);
    // ≥ memory latency (300) + L2 (6) + L1 (2).
    assert!(
        cold.stats.cycles > 300,
        "cold miss must pay memory latency: {}",
        cold.stats.cycles
    );
    assert_eq!(cold.final_regs[3], 8);
}

#[test]
fn independent_misses_overlap_but_chased_misses_serialize() {
    // 16 independent cold loads vs a 16-deep pointer chase over the same
    // footprint: the chase must cost several times more (MLP vs none).
    let mut parallel = vec![Insn::mov_imm(r(1), 0x20000)];
    for k in 0..16u8 {
        parallel.push(Insn::load(r(2 + (k % 8)), r(1), i32::from(k) * 512));
    }
    parallel.push(Insn::halt());
    // Chase: mem[a] holds the next address.
    let mut chase = vec![Insn::mov_imm(r(1), 0x20000)];
    for _ in 0..16 {
        chase.push(Insn::load(r(1), r(1), 0));
    }
    chase.push(Insn::halt());
    let mem: Vec<(u64, i64)> = (0..16u64)
        .map(|k| (0x20000 + k * 512, 0x20000 + (k as i64 + 1) * 512))
        .collect();
    let p = run(&Program::from_insns(parallel), MachineConfig::default(), &mem);
    let c = run(&Program::from_insns(chase), MachineConfig::default(), &mem);
    assert!(
        c.stats.cycles > p.stats.cycles * 3,
        "pointer chase must serialize: {} vs {} cycles",
        c.stats.cycles,
        p.stats.cycles
    );
}

#[test]
fn store_to_load_dependence_is_honored() {
    // store then load of the same address: load must see the stored value,
    // and a store with an unresolved guard blocks younger loads until it
    // executes (conservative disambiguation).
    let insns = vec![
        Insn::mov_imm(r(1), 0x3000),
        Insn::mov_imm(r(2), 42),
        Insn::store(r(2), r(1), 0),
        Insn::load(r(3), r(1), 0),
        Insn::halt(),
    ];
    let res = run(&Program::from_insns(insns), MachineConfig::default(), &[]);
    assert_eq!(res.final_regs[3], 42);
    assert_eq!(res.final_mem.get(&0x3000), Some(&42));
}

#[test]
fn deeper_pipeline_costs_more_on_flush() {
    use wishbranch_isa::{CmpOp, PredReg, ProgramBuilder};
    // One guaranteed-mispredicted branch (cold predictor, taken backward...
    // use a forward taken branch fetched cold so the not-taken default wins
    // wrongly once).
    let build = || {
        let mut b = ProgramBuilder::new();
        let t = b.label("t");
        b.push(Insn::mov_imm(r(1), 1));
        // Condition FALSE, but a cold bimodal predictor guesses taken →
        // guaranteed single misprediction.
        b.push(Insn::cmp(CmpOp::Ne, PredReg::new(1), r(1), Operand::imm(1)));
        b.push_cond_branch(PredReg::new(1), true, t, None);
        for _ in 0..4 {
            b.push(Insn::alu(AluOp::Add, r(2), r(2), Operand::imm(1)));
        }
        b.bind(t);
        b.push(Insn::halt());
        b.build()
    };
    let shallow_cfg = MachineConfig::default().with_depth(10);
    let deep_cfg = MachineConfig::default().with_depth(30);
    let shallow = run(&build(), shallow_cfg, &[]);
    let deep = run(&build(), deep_cfg, &[]);
    assert!(shallow.stats.flushes >= 1);
    assert!(deep.stats.flushes >= 1);
    assert!(
        deep.stats.cycles >= shallow.stats.cycles + 15,
        "flush on 30-deep pipe must cost ≥15 more cycles than on 10-deep: {} vs {}",
        deep.stats.cycles,
        shallow.stats.cycles
    );
}

#[test]
fn icache_misses_stall_fetch() {
    // A program long enough to span many I-cache lines, executed twice via
    // a loop: second pass must be much faster per iteration (warm I-cache).
    use wishbranch_isa::{CmpOp, PredReg, ProgramBuilder};
    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let done = b.label("done");
    b.push(Insn::mov_imm(r(1), 0));
    b.bind(top);
    for _ in 0..256 {
        b.push(Insn::alu(AluOp::Add, r(2), r(2), Operand::imm(1)));
    }
    b.push(Insn::alu(AluOp::Add, r(1), r(1), Operand::imm(1)));
    b.push(Insn::cmp(CmpOp::Eq, PredReg::new(1), r(1), Operand::imm(2)));
    b.push_cond_branch(PredReg::new(1), true, done, None);
    b.push_branch_to(Insn::branch(BranchKind::Uncond, 0), top);
    b.bind(done);
    b.push(Insn::halt());
    let res = run(&b.build(), MachineConfig::default(), &[]);
    // 256 adds / 8 per line = 32 lines; first pass misses them all into L2
    // (6 extra cycles each at least).
    assert!(
        res.stats.icache.misses >= 30,
        "first pass must miss the I-cache: {:?}",
        res.stats.icache
    );
    assert!(
        res.stats.icache.hits > res.stats.icache.misses,
        "second pass must hit: {:?}",
        res.stats.icache
    );
}

use wishbranch_isa::BranchKind;

/// Builds the store-to-load-forwarding scenario: a slow store (data behind
/// a div chain) pins the store queue, a fast store to `0x3000` issues but
/// stays queued behind it, and a younger load of `load_offset` from the
/// fast store's address then hits the conservative-disambiguation wall.
/// With forwarding on, full overlap resolves from the queue.
fn stlf_program(load_offset: i32) -> Program {
    let mut insns = vec![
        Insn::mov_imm(r(1), 0x3000),
        Insn::mov_imm(r(5), 0x4000),
        Insn::mov_imm(r(2), 1 << 20),
    ];
    // Serial div chain: the slow store's data arrives late, keeping it
    // unexecuted at the store-queue head for a long time.
    for _ in 0..4 {
        insns.push(Insn::alu(AluOp::Div, r(2), r(2), Operand::imm(2)));
    }
    insns.push(Insn::store(r(2), r(5), 0)); // slow store, unexecuted
    insns.push(Insn::mov_imm(r(3), 42));
    insns.push(Insn::store(r(3), r(1), 0)); // fast store, queued behind it
    insns.push(Insn::load(r(4), r(1), load_offset));
    insns.push(Insn::alu(AluOp::Add, r(6), r(4), Operand::imm(1))); // dependent
    insns.push(Insn::halt());
    Program::from_insns(insns)
}

#[test]
fn full_overlap_store_forwards_at_l1_latency() {
    let mut fwd_cfg = ideal_mem_cfg();
    fwd_cfg.mem.realistic = true;
    fwd_cfg.mem.store_forwarding = true;
    let mut nofwd_cfg = ideal_mem_cfg();
    nofwd_cfg.mem.realistic = true;
    let prog = stlf_program(0);
    let fwd = run(&prog, fwd_cfg, &[]);
    let nofwd = run(&prog, nofwd_cfg, &[]);
    assert!(fwd.stats.store_forwards >= 1, "full overlap must forward");
    assert_eq!(nofwd.stats.store_forwards, 0, "knob off must never forward");
    // Identical architectural outcome, strictly better timing: the load
    // no longer waits for the div chain to release the store queue.
    assert_eq!(fwd.final_regs, nofwd.final_regs);
    assert_eq!(fwd.final_regs[6], 43, "forwarded value must be the store's");
    assert!(
        fwd.stats.cycles < nofwd.stats.cycles,
        "forwarding must beat conservative waiting: {} vs {} cycles",
        fwd.stats.cycles,
        nofwd.stats.cycles
    );
}

#[test]
fn partial_overlap_replays_instead_of_forwarding() {
    let mut cfg = ideal_mem_cfg();
    cfg.mem.realistic = true;
    cfg.mem.store_forwarding = true;
    // The load's 8-byte window overlaps the store's but the addresses
    // differ: forwarding would need byte merging, so the load replays.
    let res = run(&stlf_program(4), cfg, &[]);
    assert_eq!(res.stats.store_forwards, 0, "partial overlap must not forward");
    assert!(
        res.stats.load_replays > 0,
        "partial overlap must be counted as replay cycles"
    );
}

#[test]
fn squashed_wrong_path_store_never_forwards() {
    use wishbranch_isa::{CmpOp, PredReg, ProgramBuilder};
    // The branch condition is FALSE but a cold predictor guesses taken, so
    // the wrong path — which stores 99 to the load's address — is fetched
    // and then squashed. The correct-path load must read memory (7), not
    // the squashed store's data, and no forward may be recorded.
    let mut b = ProgramBuilder::new();
    let wrong = b.label("wrong");
    let done = b.label("done");
    b.push(Insn::mov_imm(r(1), 0x3000));
    b.push(Insn::mov_imm(r(2), 99));
    b.push(Insn::cmp(CmpOp::Ne, PredReg::new(1), r(1), Operand::imm(0x3000)));
    b.push_cond_branch(PredReg::new(1), true, wrong, None);
    // Correct path (fall-through after the flush):
    b.push(Insn::load(r(3), r(1), 0));
    b.push_jump(done);
    b.bind(wrong);
    b.push(Insn::store(r(2), r(1), 0));
    b.bind(done);
    b.push(Insn::halt());
    let mut cfg = ideal_mem_cfg();
    cfg.mem.realistic = true;
    cfg.mem.store_forwarding = true;
    let res = run(&b.build(), cfg, &[(0x3000, 7)]);
    assert!(res.stats.flushes >= 1, "the branch must mispredict");
    assert_eq!(
        res.stats.store_forwards, 0,
        "a squashed store must never forward past the flush boundary"
    );
    assert_eq!(res.final_regs[3], 7, "the load must read memory, not the squashed store");
    assert_eq!(res.final_mem.get(&0x3000), Some(&7), "the squashed store must not commit");
}

#[test]
fn finite_write_buffer_backpressures_store_bursts() {
    // 8 independent stores to distinct cold lines. With an unbounded
    // write path every store completes in a cycle and the program ends in
    // tens of cycles; with a 2-entry write buffer the third store is
    // refused until a drain (a full memory round trip) completes, and the
    // refusals are attributed to the `writebuf_full` cause.
    let build = || {
        let mut insns = vec![Insn::mov_imm(r(1), 0x50000), Insn::mov_imm(r(2), 7)];
        for k in 0..8i32 {
            insns.push(Insn::store(r(2), r(1), k * 512));
        }
        insns.push(Insn::halt());
        Program::from_insns(insns)
    };
    let mut unlimited = MachineConfig::default();
    unlimited.mem.realistic = true;
    let mut bounded = MachineConfig::default();
    bounded.mem.realistic = true;
    bounded.mem.write_buffer_entries = 2;
    let fast = run(&build(), unlimited, &[]);
    let slow = run(&build(), bounded, &[]);
    assert_eq!(fast.stats.writebuf_full_stalls, 0, "disabled buffer never refuses");
    assert!(
        slow.stats.writebuf_full_stalls > 0,
        "a 2-entry buffer must refuse the store burst"
    );
    assert!(
        slow.stats.cycle_accounting.writebuf_full > 0,
        "refused cycles must be attributed: {:?}",
        slow.stats.cycle_accounting
    );
    assert!(
        slow.stats.cycles > fast.stats.cycles + 200,
        "stores must wait for drains: {} vs {} cycles",
        slow.stats.cycles,
        fast.stats.cycles
    );
    assert_eq!(fast.final_mem, slow.final_mem, "timing-only change");
}

#[test]
fn instruction_prefetch_hides_straight_line_imiss() {
    // 512 straight-line adds span 64 I-cache lines. Under the non-blocking
    // I-side, next-line prefetch overlaps each demand fill with its
    // successor's, so the prefetching machine finishes well ahead of the
    // same machine with prefetch disabled — and the fill-wait cycles are
    // attributed to `imiss_pending`, not the flat `fetch_imiss`.
    let build = || {
        let mut insns = Vec::new();
        for _ in 0..512 {
            insns.push(Insn::alu(AluOp::Add, r(2), r(2), Operand::imm(1)));
        }
        insns.push(Insn::halt());
        Program::from_insns(insns)
    };
    let mut pref = MachineConfig::default();
    pref.mem.realistic = true;
    let mut nopref = MachineConfig::default();
    nopref.mem.realistic = true;
    nopref.mem.iprefetch = false;
    let with_pref = run(&build(), pref, &[]);
    let without = run(&build(), nopref, &[]);
    assert!(
        with_pref.stats.cycles < without.stats.cycles,
        "next-line prefetch must hide I-fills: {} vs {} cycles",
        with_pref.stats.cycles,
        without.stats.cycles
    );
    for res in [&with_pref, &without] {
        assert!(
            res.stats.cycle_accounting.imiss_pending > 0,
            "non-blocking I-fill waits must be attributed: {:?}",
            res.stats.cycle_accounting
        );
    }
}

#[test]
fn single_data_port_serializes_same_cycle_accesses() {
    // 64 independent warm-ish loads. With unlimited ports they issue at
    // machine width; with one data port every additional same-cycle access
    // is refused (`port_conflict_stalls`) and retried, stretching the run
    // by roughly the access count.
    let build = || {
        let mut insns = vec![Insn::mov_imm(r(1), 0x60000)];
        for k in 0..64i32 {
            insns.push(Insn::load(r(2 + (k % 8) as u8), r(1), k * 8));
        }
        insns.push(Insn::halt());
        Program::from_insns(insns)
    };
    let mut unlimited = ideal_mem_cfg();
    unlimited.mem.realistic = true;
    let mut one_port = ideal_mem_cfg();
    one_port.mem.realistic = true;
    one_port.mem.data_ports = 1;
    let fast = run(&build(), unlimited, &[]);
    let slow = run(&build(), one_port, &[]);
    assert_eq!(fast.stats.port_conflict_stalls, 0, "0 ports means unlimited");
    assert!(
        slow.stats.port_conflict_stalls > 0,
        "one port must refuse same-cycle accesses"
    );
    assert!(
        slow.stats.cycles > fast.stats.cycles + 32,
        "one port must serialize the burst: {} vs {} cycles",
        slow.stats.cycles,
        fast.stats.cycles
    );
    assert_eq!(fast.final_regs, slow.final_regs, "timing-only change");
}

/// Regression for the fetch-line/squash interaction, both models.
///
/// A cold predictor guesses the forward branch taken, so fetch runs off to
/// a far, cold line and starts an I-fill; the branch is actually
/// not-taken, so the fill is wrong-path. Under the flat model the flush
/// simply forgives the remaining stall (fills are instantaneous by
/// contract) and nothing is left in flight. Under the non-blocking model
/// the fill sits in the I-MSHRs; the flush must cancel it (counted in
/// `wrong_path_fills`) rather than let fetch resume stalled on a line it
/// will never use.
#[test]
fn flush_cancels_wrong_path_instruction_fills() {
    use wishbranch_isa::{CmpOp, PredReg, ProgramBuilder};
    let build = || {
        let mut b = ProgramBuilder::new();
        let far = b.label("far");
        let done = b.label("done");
        b.push(Insn::mov_imm(r(1), 1));
        // Condition FALSE, but a cold bimodal predictor guesses taken.
        b.push(Insn::cmp(CmpOp::Ne, PredReg::new(1), r(1), Operand::imm(1)));
        b.push_cond_branch(PredReg::new(1), true, far, None);
        b.push(Insn::mov_imm(r(2), 7)); // correct path
        b.push_jump(done);
        // Pad the wrong-path target onto a distant, never-warmed line.
        for _ in 0..256 {
            b.push(Insn::alu(AluOp::Add, r(3), r(3), Operand::imm(1)));
        }
        b.bind(far);
        b.push(Insn::mov_imm(r(2), 99)); // wrong path
        b.bind(done);
        b.push(Insn::halt());
        b.build()
    };
    let flat = run(&build(), MachineConfig::default(), &[]);
    let mut cfg = MachineConfig::default();
    cfg.mem.realistic = true;
    let realistic = run(&build(), cfg, &[]);
    for res in [&flat, &realistic] {
        assert!(res.stats.flushes >= 1, "the branch must mispredict");
        assert_eq!(res.final_regs[2], 7, "the fall-through path is architectural");
    }
    assert_eq!(flat.stats.wrong_path_fills, 0, "the flat model has no fills to cancel");
    // The program-entry cold I-miss costs one ~308-cycle round trip; a
    // second, unforgiven wrong-path stall would cost another.
    assert!(
        flat.stats.cycles < 500,
        "flat flush must forgive the wrong-path I-miss stall: {} cycles",
        flat.stats.cycles
    );
    assert!(
        realistic.stats.wrong_path_fills >= 1,
        "the squashed I-fill must be cancelled and counted"
    );
}

#[test]
fn dependence_chains_are_enforced_across_flushes() {
    // Regression test: ROB ids must stay contiguous after a flush, or
    // dependence lookups index the wrong entry and post-flush chains
    // collapse. A mispredicting branch is followed by a 48-link serial
    // chain every iteration; the chain length must be visible in the
    // cycle count no matter how many flushes happen.
    use wishbranch_isa::{CmpOp, PredReg, ProgramBuilder};
    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let t = b.label("t");
    let j = b.label("j");
    let done = b.label("done");
    let iters = 200i32;
    b.push(Insn::mov_imm(r(16), 0x5A5A));
    b.push(Insn::mov_imm(r(20), 0));
    b.bind(top);
    // xorshift coin flip -> guaranteed frequent mispredicts.
    b.push(Insn::alu(AluOp::Shl, r(3), r(16), Operand::imm(13)));
    b.push(Insn::alu(AluOp::Xor, r(16), r(16), Operand::reg(3)));
    b.push(Insn::alu(AluOp::Shr, r(3), r(16), Operand::imm(7)));
    b.push(Insn::alu(AluOp::Xor, r(16), r(16), Operand::reg(3)));
    b.push(Insn::alu(AluOp::And, r(7), r(16), Operand::imm(1)));
    b.push(Insn::cmp(CmpOp::Eq, PredReg::new(1), r(7), Operand::imm(1)));
    b.push_cond_branch(PredReg::new(1), true, t, None);
    b.push(Insn::alu(AluOp::Add, r(8), r(8), Operand::imm(1)));
    b.push_jump(j);
    b.bind(t);
    b.push(Insn::alu(AluOp::Sub, r(8), r(8), Operand::imm(1)));
    b.bind(j);
    // The serial chain: 48 dependent adds on r1.
    for _ in 0..48 {
        b.push(Insn::alu(AluOp::Add, r(1), r(1), Operand::imm(1)));
    }
    b.push(Insn::alu(AluOp::Add, r(20), r(20), Operand::imm(1)));
    b.push(Insn::cmp(CmpOp::Lt, PredReg::new(2), r(20), Operand::imm(iters)));
    b.push_cond_branch(PredReg::new(2), true, top, None);
    b.bind(done);
    b.push(Insn::halt());
    let res = run(&b.build(), ideal_mem_cfg(), &[]);
    assert!(
        res.stats.flushes > 40,
        "the branch must mispredict often: {}",
        res.stats.flushes
    );
    assert_eq!(res.final_regs[1], i64::from(iters) * 48, "chain executed fully");
    // Absolute floor: 48 chained adds per iteration = 48 cycles/iteration,
    // regardless of flush handling.
    assert!(
        res.stats.cycles >= (iters as u64) * 48,
        "serial chains must be enforced across flushes: {} cycles for {} iters",
        res.stats.cycles,
        iters
    );
}
