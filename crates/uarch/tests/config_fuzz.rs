//! Configuration fuzzing: the architectural result must be identical to
//! the functional reference under *any* machine configuration — narrow
//! fetch, tiny windows, shallow or deep pipes, tiny caches, finite MSHRs,
//! either predication mechanism, and any combination of the wish/DHP/
//! predicate-prediction hardware. Timing knobs must never change what the
//! program computes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
use wishbranch_ir::{FunctionBuilder, Interpreter, Module};
use wishbranch_isa::exec::Machine;
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};
use wishbranch_mem::CacheConfig;
use wishbranch_uarch::{MachineConfig, PredMechanism, Simulator};

const DATA_BASE: i64 = 0x1000;

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

/// Structured random program (hammocks + loops + memory ops), small enough
/// to simulate on pathological machines.
fn random_module(seed: u64) -> Module {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut f = FunctionBuilder::new("main");
    let entry = f.entry_block();
    f.select(entry);
    f.movi(r(19), DATA_BASE);
    for i in 1..9 {
        f.load(r(i), r(19), i32::from(i) * 8);
    }
    let mut counter = 0u8;
    emit_region(&mut f, &mut rng, 2, &mut counter);
    for i in 1..9 {
        f.store(r(i), r(19), 256 + i32::from(i) * 8);
    }
    f.halt();
    Module::new(vec![f.build()], 0).unwrap()
}

fn emit_region(f: &mut FunctionBuilder, rng: &mut StdRng, depth: u32, counter: &mut u8) {
    for _ in 0..rng.gen_range(1..4) {
        match rng.gen_range(0..10) {
            0..=2 if depth > 0 => {
                let lhs = r(rng.gen_range(1..9));
                let op = [CmpOp::Lt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne][rng.gen_range(0..4usize)];
                let (t, el, j) = (f.new_block(), f.new_block(), f.new_block());
                f.branch(op, lhs, Operand::imm(rng.gen_range(-5..6)), t, el);
                f.select(el);
                emit_region(f, rng, depth - 1, counter);
                f.jump(j);
                f.select(t);
                emit_region(f, rng, depth - 1, counter);
                f.jump(j);
                f.select(j);
            }
            3..=4 if depth > 0 && *counter < 28 => {
                let c = r(20 + *counter);
                *counter += 1;
                let (body, exit) = (f.new_block(), f.new_block());
                f.movi(c, 0);
                f.jump(body);
                f.select(body);
                for _ in 0..rng.gen_range(1..3) {
                    emit_straight(f, rng);
                }
                f.alu(AluOp::Add, c, c, Operand::imm(1));
                f.branch(CmpOp::Lt, c, Operand::imm(rng.gen_range(1..5)), body, exit);
                f.select(exit);
            }
            _ => emit_straight(f, rng),
        }
    }
}

fn emit_straight(f: &mut FunctionBuilder, rng: &mut StdRng) {
    match rng.gen_range(0..4) {
        0 => {
            let (d, s) = (r(rng.gen_range(1..9)), r(rng.gen_range(1..9)));
            let op = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::Mul][rng.gen_range(0..4usize)];
            f.alu(op, d, s, Operand::Imm(rng.gen_range(-7..8)));
        }
        1 => f.movi(r(rng.gen_range(1..9)), rng.gen_range(-99..99)),
        2 => f.store(r(rng.gen_range(1..9)), r(19), rng.gen_range(0..16) * 8),
        _ => f.load(r(rng.gen_range(1..9)), r(19), rng.gen_range(0..16) * 8),
    }
}

/// A random but valid machine configuration.
fn random_config(seed: u64) -> MachineConfig {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0FFEE);
    let mut cfg = MachineConfig::default();
    cfg.fetch_width = [2, 4, 8][rng.gen_range(0..3usize)];
    cfg.max_cond_branches_per_cycle = [1, 2, 3][rng.gen_range(0..3usize)];
    cfg.rob_size = [16, 48, 128, 512][rng.gen_range(0..4usize)];
    cfg.issue_width = [2, 4, 8][rng.gen_range(0..3usize)];
    cfg.retire_width = cfg.issue_width;
    cfg.pipeline_depth = [3, 10, 30][rng.gen_range(0..3usize)];
    cfg.pred_mechanism = if rng.gen_bool(0.5) {
        PredMechanism::CStyle
    } else {
        PredMechanism::SelectUop
    };
    cfg.wish_enabled = rng.gen_bool(0.8);
    cfg.dhp_enabled = rng.gen_bool(0.5);
    cfg.predicate_prediction = rng.gen_bool(0.5);
    cfg.mem.max_outstanding_misses = [0, 1, 4][rng.gen_range(0..3usize)];
    if rng.gen_bool(0.5) {
        // Tiny caches: stress miss paths.
        cfg.mem.icache = CacheConfig {
            size_bytes: 512,
            ways: 2,
            line_bytes: 64,
            latency: 2,
        };
        cfg.mem.l1d = CacheConfig {
            size_bytes: 256,
            ways: 1,
            line_bytes: 64,
            latency: 2,
        };
        cfg.mem.l2 = CacheConfig {
            size_bytes: 2048,
            ways: 2,
            line_bytes: 64,
            latency: 6,
        };
    }
    if rng.gen_bool(0.3) {
        cfg.wish_loop_predictor = Some(wishbranch_bpred::LoopPredConfig {
            bias: rng.gen_range(0..3),
            ..wishbranch_bpred::LoopPredConfig::default()
        });
    }
    cfg.max_cycles = 50_000_000;
    cfg
}

#[test]
fn any_config_preserves_architecture() {
    for seed in 0..48u64 {
        let module = random_module(seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xF00D);
        let mem: Vec<(u64, i64)> = (0..40)
            .map(|i| (DATA_BASE as u64 + i * 8, rng.gen_range(-50..50)))
            .collect();
        let mut interp = Interpreter::new();
        for &(a, v) in &mem {
            interp.mem.insert(a, v);
        }
        let profile = interp.run(&module, 10_000_000).unwrap().profile;
        for variant in [
            BinaryVariant::NormalBranch,
            BinaryVariant::BaseMax,
            BinaryVariant::WishJumpJoinLoop,
        ] {
            let bin = compile(&module, &profile, variant, &CompileOptions::default());
            let mut reference = Machine::new();
            for &(a, v) in &mem {
                reference.mem.insert(a, v);
            }
            let expect = reference.run(&bin.program, u64::MAX / 2).unwrap();
            for cfg_seed in 0..4u64 {
                let cfg = random_config(seed * 31 + cfg_seed);
                let summary = format!(
                    "seed {seed} {variant} cfg{cfg_seed}: fw={} rob={} depth={} mech={:?} wish={} dhp={} pp={} mshr={}",
                    cfg.fetch_width,
                    cfg.rob_size,
                    cfg.pipeline_depth,
                    cfg.pred_mechanism,
                    cfg.wish_enabled,
                    cfg.dhp_enabled,
                    cfg.predicate_prediction,
                    cfg.mem.max_outstanding_misses,
                );
                let mut sim = Simulator::new(&bin.program, cfg);
                for &(a, v) in &mem {
                    sim.preload_mem(a, v);
                }
                let res = sim.run().unwrap_or_else(|e| panic!("{summary}: {e}"));
                assert_eq!(res.final_mem, expect.mem, "{summary}: memory diverged");
                assert_eq!(
                    res.final_regs[1..10],
                    expect.regs[1..10],
                    "{summary}: registers diverged"
                );
            }
        }
    }
}
