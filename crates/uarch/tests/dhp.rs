//! Dynamic hammock predication (Klauser et al., the paper's §6.1
//! hardware-only alternative): correctness, flush elimination on eligible
//! hammocks, and its limitation relative to wish branches (no loops, no
//! complex regions).

use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
use wishbranch_ir::{FunctionBuilder, Interpreter, Module};
use wishbranch_isa::exec::Machine;
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand, Program};
use wishbranch_uarch::{MachineConfig, SimResult, Simulator};

const DATA: i64 = 0x1000;
const N: i32 = 3000;

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

/// Coin-flip diamond driven by a register PRNG — DHP-eligible (branch-free
/// arms of 4 µops each).
fn hammock_module() -> Module {
    let mut f = FunctionBuilder::new("main");
    let e = f.entry_block();
    let body = f.new_block();
    let t = f.new_block();
    let el = f.new_block();
    let j = f.new_block();
    let exit = f.new_block();
    f.select(e);
    f.movi(r(19), DATA);
    f.movi(r(16), 0xACE1);
    f.movi(r(20), 0);
    f.jump(body);
    f.select(body);
    f.alu(AluOp::Shl, r(3), r(16), Operand::imm(13));
    f.alu(AluOp::Xor, r(16), r(16), Operand::reg(3));
    f.alu(AluOp::Shr, r(3), r(16), Operand::imm(7));
    f.alu(AluOp::Xor, r(16), r(16), Operand::reg(3));
    f.alu(AluOp::And, r(7), r(16), Operand::imm(1));
    f.branch(CmpOp::Eq, r(7), Operand::imm(1), t, el);
    f.select(el);
    for k in 0..4 {
        f.alu(AluOp::Add, r(8 + k), r(8 + k), Operand::imm(1));
    }
    f.jump(j);
    f.select(t);
    for k in 0..4 {
        f.alu(AluOp::Sub, r(8 + k), r(8 + k), Operand::imm(2));
    }
    f.jump(j);
    f.select(j);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(N), body, exit);
    f.select(exit);
    for k in 0..4 {
        f.store(r(8 + k), r(19), i32::from(k) * 8);
    }
    f.halt();
    Module::new(vec![f.build()], 0).unwrap()
}

fn normal_binary(m: &Module) -> Program {
    let prof = Interpreter::new().run(m, 50_000_000).unwrap().profile;
    compile(m, &prof, BinaryVariant::NormalBranch, &CompileOptions::default()).program
}

fn run(program: &Program, dhp: bool) -> SimResult {
    let cfg = MachineConfig {
        dhp_enabled: dhp,
        ..MachineConfig::default()
    };
    let mut sim = Simulator::new(program, cfg);
    let res = sim.run().expect("halts");
    // Architectural verification against the functional machine.
    let mut m = Machine::new();
    let expect = m.run(program, u64::MAX / 2).expect("halts");
    assert_eq!(res.final_mem, expect.mem, "DHP changed the architecture");
    res
}

#[test]
fn dhp_eliminates_flushes_on_eligible_hammocks() {
    let prog = normal_binary(&hammock_module());
    let plain = run(&prog, false);
    let dhp = run(&prog, true);
    assert!(
        plain.stats.flushes > (N as u64) / 4,
        "coin flip must flush the plain machine: {}",
        plain.stats.flushes
    );
    assert!(dhp.stats.dhp_predications > (N as u64) / 2, "{:?}", dhp.stats);
    assert!(
        dhp.stats.flushes < plain.stats.flushes / 4,
        "DHP must remove most flushes: {} vs {}",
        dhp.stats.flushes,
        plain.stats.flushes
    );
    assert!(
        dhp.stats.cycles < plain.stats.cycles,
        "DHP must be faster on hard hammocks: {} vs {}",
        dhp.stats.cycles,
        plain.stats.cycles
    );
    // The predicated arms retire as guard-false NOPs.
    assert!(dhp.stats.retired_guard_false > 0);
}

#[test]
fn dhp_cannot_help_loops_but_wish_loops_can() {
    // A variable-trip inner loop: DHP (forward hammocks only) must leave
    // its flushes in place, while the wish binary removes them — the
    // paper's §6.1 distinction.
    let mut f = FunctionBuilder::new("main");
    let e = f.entry_block();
    let outer = f.new_block();
    let inner = f.new_block();
    let iexit = f.new_block();
    let exit = f.new_block();
    f.select(e);
    f.movi(r(19), DATA);
    f.movi(r(16), 0xBEEF);
    f.movi(r(20), 0);
    f.jump(outer);
    f.select(outer);
    f.alu(AluOp::Shl, r(3), r(16), Operand::imm(13));
    f.alu(AluOp::Xor, r(16), r(16), Operand::reg(3));
    f.alu(AluOp::Shr, r(3), r(16), Operand::imm(7));
    f.alu(AluOp::Xor, r(16), r(16), Operand::reg(3));
    f.alu(AluOp::And, r(4), r(16), Operand::imm(3));
    f.alu(AluOp::Add, r(4), r(4), Operand::imm(1));
    f.movi(r(21), 0);
    f.jump(inner);
    f.select(inner);
    f.alu(AluOp::Add, r(9), r(9), Operand::reg(21));
    f.alu(AluOp::Add, r(21), r(21), Operand::imm(1));
    f.branch(CmpOp::Lt, r(21), Operand::reg(r(4).index() as u8), inner, iexit);
    f.select(iexit);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(N), outer, exit);
    f.select(exit);
    f.store(r(9), r(19), 0);
    f.halt();
    let m = Module::new(vec![f.build()], 0).unwrap();

    let prog = normal_binary(&m);
    let plain = run(&prog, false);
    let dhp = run(&prog, true);
    assert_eq!(
        dhp.stats.dhp_predications, 0,
        "backward branches are not DHP-eligible"
    );
    assert!(dhp.stats.flushes + 50 > plain.stats.flushes, "DHP can't help loops");

    // Wish loops, by contrast, convert many of those flushes to late exits.
    let prof = Interpreter::new().run(&m, 50_000_000).unwrap().profile;
    let wjl = compile(&m, &prof, BinaryVariant::WishJumpJoinLoop, &CompileOptions::default());
    let mut sim = Simulator::new(&wjl.program, MachineConfig::default());
    let wish = sim.run().expect("halts");
    assert!(
        wish.stats.flushes < plain.stats.flushes,
        "wish loops must beat plain prediction where DHP cannot: {} vs {}",
        wish.stats.flushes,
        plain.stats.flushes
    );
}

#[test]
fn dhp_ignores_hammocks_with_branchy_arms() {
    // An arm containing a call is not eligible.
    use wishbranch_ir::FuncId;
    let mut h = FunctionBuilder::new("h");
    let he = h.entry_block();
    h.select(he);
    h.alu(AluOp::Add, r(10), r(10), Operand::imm(1));
    h.ret();
    let mut f = FunctionBuilder::new("main");
    let e = f.entry_block();
    let body = f.new_block();
    let t = f.new_block();
    let el = f.new_block();
    let j = f.new_block();
    let exit = f.new_block();
    f.select(e);
    f.movi(r(16), 0x1234);
    f.movi(r(20), 0);
    f.jump(body);
    f.select(body);
    f.alu(AluOp::Shl, r(3), r(16), Operand::imm(13));
    f.alu(AluOp::Xor, r(16), r(16), Operand::reg(3));
    f.alu(AluOp::And, r(7), r(16), Operand::imm(1));
    f.branch(CmpOp::Eq, r(7), Operand::imm(1), t, el);
    f.select(el);
    f.call(FuncId(1));
    f.jump(j);
    f.select(t);
    f.alu(AluOp::Sub, r(9), r(9), Operand::imm(1));
    f.jump(j);
    f.select(j);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(500), body, exit);
    f.select(exit);
    f.halt();
    let m = Module::new(vec![f.build(), h.build()], 0).unwrap();
    let dhp = run(&normal_binary(&m), true);
    assert_eq!(dhp.stats.dhp_predications, 0, "call in arm disqualifies DHP");
}

#[test]
fn dhp_on_wish_binary_leaves_wish_branches_alone() {
    let m = hammock_module();
    let prof = Interpreter::new().run(&m, 50_000_000).unwrap().profile;
    let wjl = compile(&m, &prof, BinaryVariant::WishJumpJoinLoop, &CompileOptions::default());
    let cfg = MachineConfig {
        dhp_enabled: true,
        ..MachineConfig::default()
    };
    let mut sim = Simulator::new(&wjl.program, cfg);
    let res = sim.run().expect("halts");
    // All conversions happen through the wish mechanism; DHP finds no
    // eligible plain hammocks (arms are already predicated/guarded under
    // wish branches, whose hints exclude them from DHP).
    assert!(res.stats.wish_branches_total() > 0);
    assert_eq!(res.stats.dhp_predications, 0);
}
