//! Front-end FSM tests on hand-assembled wish code (the paper's Fig. 3c and
//! Fig. 4b shapes, written directly in µops): Table 1's prediction rules,
//! high/low-confidence classification, and wish-loop recovery classes.

use wishbranch_isa::exec::Machine;
use wishbranch_isa::{
    AluOp, CmpOp, Gpr, Insn, Operand, PredReg, Program, ProgramBuilder, WishType,
};
use wishbranch_uarch::{MachineConfig, SimResult, Simulator};

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}
fn p(i: u8) -> PredReg {
    PredReg::new(i)
}

const DATA: i64 = 0x1000;
const N: i32 = 3000;

/// Hand-assembled Fig. 3c: a wish jump/join diamond inside a loop, with the
/// condition loaded from memory.
fn fig3c_program() -> Program {
    let mut b = ProgramBuilder::new();
    let loop_top = b.label("LOOP");
    let c_block = b.label("TARGET");
    let join = b.label("JOIN");
    let exit = b.label("EXIT");

    b.push(Insn::mov_imm(r(19), DATA));
    b.push(Insn::mov_imm(r(20), 0));
    b.bind(loop_top);
    // A: cond = data[i & 1023] >= 0
    b.push(Insn::alu(AluOp::And, r(2), r(20), Operand::imm(1023)));
    b.push(Insn::alu(AluOp::Shl, r(2), r(2), Operand::imm(3)));
    b.push(Insn::alu(AluOp::Add, r(2), r(2), Operand::reg(19)));
    b.push(Insn::load(r(6), r(2), 0));
    b.push(Insn::cmp2(CmpOp::Ge, p(1), p(2), r(6), Operand::imm(0)));
    b.push_cond_branch(p(1), true, c_block, Some(WishType::Jump));
    // B: else arm, guarded by p2.
    for k in 0..6 {
        b.push(Insn::alu(AluOp::Add, r(8), r(8), Operand::imm(k)).guarded(p(2)));
    }
    b.push_cond_branch(p(2), true, join, Some(WishType::Join));
    // C: then arm, guarded by p1.
    b.bind(c_block);
    for k in 0..6 {
        b.push(Insn::alu(AluOp::Sub, r(9), r(9), Operand::imm(k)).guarded(p(1)));
    }
    // D: join.
    b.bind(join);
    b.push(Insn::alu(AluOp::Add, r(20), r(20), Operand::imm(1)));
    b.push(Insn::cmp(CmpOp::Lt, p(3), r(20), Operand::imm(N)));
    b.push_cond_branch(p(3), true, loop_top, None);
    b.bind(exit);
    b.push(Insn::store(r(8), r(19), 16384));
    b.push(Insn::store(r(9), r(19), 16392));
    b.push(Insn::halt());
    b.build()
}

fn run(program: &Program, mem: &[(u64, i64)]) -> SimResult {
    let mut sim = Simulator::new(program, MachineConfig::default());
    for &(a, v) in mem {
        sim.preload_mem(a, v);
    }
    let result = sim.run().expect("halts");
    // Always verify architecture.
    let mut m = Machine::new();
    for &(a, v) in mem {
        m.mem.insert(a, v);
    }
    let expect = m.run(program, u64::MAX / 2).expect("reference halts");
    assert_eq!(result.final_mem, expect.mem, "simulator diverged");
    result
}

/// Pseudo-random sign pattern (period ≫ predictor capacity is not needed —
/// true data-dependence suffices because the array is re-read).
fn random_sign_mem() -> Vec<(u64, i64)> {
    (0..1024u64)
        .map(|i| {
            let h = i.wrapping_mul(0x9e37_79b9_7f4a_7c15).rotate_left(31) ^ (i << 7);
            (DATA as u64 + i * 8, if h & 0x8000 == 0 { 50 } else { -50 })
        })
        .collect()
}

fn positive_mem() -> Vec<(u64, i64)> {
    (0..1024u64).map(|i| (DATA as u64 + i * 8, 50)).collect()
}

#[test]
fn table1_low_conf_jump_forces_joins_not_taken() {
    // Hard branch → jump mostly low confidence → joins are fetched on every
    // low-conf pass and forced not-taken (Table 1, row 4).
    let prog = fig3c_program();
    let s = run(&prog, &random_sign_mem()).stats;
    let jumps_low = s.wish_jumps.low_correct + s.wish_jumps.low_mispredicted;
    let joins = s.wish_joins.total();
    assert!(
        jumps_low > (N as u64) * 8 / 10,
        "coin-flip jump must be mostly low confidence: {jumps_low}"
    );
    // A join retires exactly when its jump was forced not-taken.
    assert!(
        joins >= jumps_low,
        "every low-confidence jump must fetch its join: {joins} vs {jumps_low}"
    );
    // Low-confidence mode never flushes on jumps/joins.
    assert!(
        s.flushes < 100,
        "low-confidence regions must not flush: {} flushes",
        s.flushes
    );
    assert!(s.flushes_avoided > (N as u64) / 3);
}

#[test]
fn high_conf_taken_jump_skips_the_join_and_the_arm() {
    // Easy always-taken branch → high confidence, predicted taken → block B
    // (and its join) never fetched, no guard-false NOPs from B.
    let prog = fig3c_program();
    let s = run(&prog, &positive_mem()).stats;
    let jumps_high = s.wish_jumps.high_correct + s.wish_jumps.high_mispredicted;
    assert!(
        jumps_high > (N as u64) * 8 / 10,
        "always-taken jump must become high confidence: {jumps_high}"
    );
    // Joins retire only for the residual low-confidence warmup passes.
    assert!(
        s.wish_joins.total() < (N as u64) / 4,
        "high-confidence taken jumps must skip the join: {}",
        s.wish_joins.total()
    );
    assert_eq!(s.wish_jumps.high_mispredicted, 0);
    // Predicated NOPs only from warmup.
    assert!(
        s.retired_guard_false < (N as u64) * 6 / 4,
        "high-confidence mode must skip useless arms: {}",
        s.retired_guard_false
    );
}

/// Hand-assembled Fig. 4b: a wish loop whose trip count comes from memory.
fn fig4b_program() -> Program {
    let mut b = ProgramBuilder::new();
    let outer = b.label("OUTER");
    let wloop = b.label("WLOOP");
    let exit = b.label("EXIT");

    b.push(Insn::mov_imm(r(19), DATA));
    b.push(Insn::mov_imm(r(20), 0));
    b.bind(outer);
    // trip = 1 + (data[i & 1023] & 3)
    b.push(Insn::alu(AluOp::And, r(2), r(20), Operand::imm(1023)));
    b.push(Insn::alu(AluOp::Shl, r(2), r(2), Operand::imm(3)));
    b.push(Insn::alu(AluOp::Add, r(2), r(2), Operand::reg(19)));
    b.push(Insn::load(r(4), r(2), 0));
    b.push(Insn::alu(AluOp::And, r(4), r(4), Operand::imm(3)));
    b.push(Insn::alu(AluOp::Add, r(4), r(4), Operand::imm(1)));
    b.push(Insn::mov_imm(r(21), 0));
    // Loop header: mov p15, 1 (Fig. 4b).
    b.push(Insn::pred_set(p(15), true));
    b.bind(wloop);
    b.push(Insn::alu(AluOp::Add, r(9), r(9), Operand::reg(21)).guarded(p(15)));
    b.push(Insn::alu(AluOp::Add, r(21), r(21), Operand::imm(1)).guarded(p(15)));
    b.push(Insn::cmp(CmpOp::Lt, p(15), r(21), Operand::reg(4)).guarded(p(15)));
    b.push_cond_branch(p(15), true, wloop, Some(WishType::Loop));
    // Outer latch.
    b.push(Insn::alu(AluOp::Add, r(20), r(20), Operand::imm(1)));
    b.push(Insn::cmp(CmpOp::Lt, p(3), r(20), Operand::imm(N)));
    b.push_cond_branch(p(3), true, outer, None);
    b.bind(exit);
    b.push(Insn::store(r(9), r(19), 16384));
    b.push(Insn::halt());
    b.build()
}

#[test]
fn wish_loop_classes_cover_late_exits_and_stay_correct() {
    let prog = fig4b_program();
    // Random trips 1..=4.
    let mem: Vec<(u64, i64)> = (0..1024u64)
        .map(|i| {
            let h = i.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 13;
            (DATA as u64 + i * 8, (h & 0xff) as i64)
        })
        .collect();
    let s = run(&prog, &mem).stats;
    assert!(s.wish_loops.total() > 0, "wish loops must retire");
    assert!(
        s.loop_late_exits > 0,
        "unpredictable trips must produce late exits: {s:?}"
    );
    // Classification is exhaustive: every mispredicted low-confidence loop
    // is exactly one of the three classes.
    assert_eq!(
        s.wish_loops.low_mispredicted,
        s.loop_early_exits + s.loop_late_exits + s.loop_no_exits,
        "loop misprediction classes must partition low-conf mispredictions"
    );
}

#[test]
fn constant_trip_wish_loop_is_high_confidence_and_cheap() {
    let prog = fig4b_program();
    // Constant trip count 3 → the hybrid learns the TTN pattern perfectly.
    let mem: Vec<(u64, i64)> = (0..1024u64).map(|i| (DATA as u64 + i * 8, 2)).collect();
    let s = run(&prog, &mem).stats;
    let high = s.wish_loops.high_correct + s.wish_loops.high_mispredicted;
    assert!(
        high > s.wish_loops.total() * 7 / 10,
        "regular loop must run in high confidence: {:?}",
        s.wish_loops
    );
    assert!(
        s.flushes < 100,
        "a perfectly regular loop should almost never flush: {}",
        s.flushes
    );
}

/// A frequently zero-trip wish loop (random trips 0..=3) followed by an
/// easy always-taken wish jump, inside an outer loop.
fn zero_trip_loop_then_easy_jump_program() -> Program {
    let mut b = ProgramBuilder::new();
    let outer = b.label("OUTER");
    let wloop = b.label("WLOOP");
    let then_arm = b.label("THEN");
    let join = b.label("JOIN");
    let exit = b.label("EXIT");

    b.push(Insn::mov_imm(r(19), DATA));
    b.push(Insn::mov_imm(r(20), 0));
    b.bind(outer);
    // trip = data[i & 1023] & 3 — zero on a quarter of the passes.
    b.push(Insn::alu(AluOp::And, r(2), r(20), Operand::imm(1023)));
    b.push(Insn::alu(AluOp::Shl, r(2), r(2), Operand::imm(3)));
    b.push(Insn::alu(AluOp::Add, r(2), r(2), Operand::reg(19)));
    b.push(Insn::load(r(4), r(2), 0));
    b.push(Insn::alu(AluOp::And, r(4), r(4), Operand::imm(3)));
    b.push(Insn::mov_imm(r(21), 0));
    // Header test (Fig. 4b shape, but p15 can already be false on entry:
    // a zero-trip pass never takes the wish-loop branch at all).
    b.push(Insn::cmp(CmpOp::Lt, p(15), r(21), Operand::reg(4)));
    b.bind(wloop);
    b.push(Insn::alu(AluOp::Add, r(9), r(9), Operand::imm(1)).guarded(p(15)));
    b.push(Insn::alu(AluOp::Add, r(21), r(21), Operand::imm(1)).guarded(p(15)));
    b.push(Insn::cmp(CmpOp::Lt, p(15), r(21), Operand::reg(4)).guarded(p(15)));
    b.push_cond_branch(p(15), true, wloop, Some(WishType::Loop));
    // Easy diamond: i >= 0 is always true, so the jump is always taken
    // and quickly becomes high confidence — unless the front end is still
    // stuck in the zero-trip loop's low-confidence mode.
    b.push(Insn::cmp2(CmpOp::Ge, p(1), p(2), r(20), Operand::imm(0)));
    b.push_cond_branch(p(1), true, then_arm, Some(WishType::Jump));
    b.push(Insn::alu(AluOp::Add, r(8), r(8), Operand::imm(7)).guarded(p(2)));
    b.push_cond_branch(p(2), true, join, Some(WishType::Join));
    b.bind(then_arm);
    b.push(Insn::alu(AluOp::Sub, r(10), r(10), Operand::imm(3)).guarded(p(1)));
    b.bind(join);
    b.push(Insn::alu(AluOp::Add, r(20), r(20), Operand::imm(1)));
    b.push(Insn::cmp(CmpOp::Lt, p(3), r(20), Operand::imm(N)));
    b.push_cond_branch(p(3), true, outer, None);
    b.bind(exit);
    b.push(Insn::store(r(9), r(19), 16384));
    b.push(Insn::store(r(8), r(19), 16392));
    b.push(Insn::store(r(10), r(19), 16400));
    b.push(Insn::halt());
    b.build()
}

#[test]
fn zero_trip_wish_loop_releases_low_confidence_mode() {
    // A predicted zero-trip wish loop takes Fig. 8's "wish loop is
    // exited" edge immediately: its body is never fetched, so the front
    // end must not stay in the loop's low-confidence mode and predicate
    // the easy wish jump that follows it.
    let prog = zero_trip_loop_then_easy_jump_program();
    let mem: Vec<(u64, i64)> = (0..1024u64)
        .map(|i| {
            let h = i.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 13;
            (DATA as u64 + i * 8, (h & 0xff) as i64)
        })
        .collect();
    let s = run(&prog, &mem).stats;
    // The random 0..=3 trip counts keep the loop itself low confidence…
    let loops_low = s.wish_loops.low_correct + s.wish_loops.low_mispredicted;
    assert!(
        loops_low > s.wish_loops.total() / 2,
        "random-trip loop must stay mostly low confidence: {:?}",
        s.wish_loops
    );
    // …but the always-taken jump must be judged on its own confidence,
    // not forced not-taken by a loop whose body never ran.
    let jumps_high = s.wish_jumps.high_correct + s.wish_jumps.high_mispredicted;
    assert!(
        jumps_high > (N as u64) * 8 / 10,
        "easy jump must be mostly high confidence after zero-trip loops: {:?}",
        s.wish_jumps
    );
    assert!(
        s.wish_joins.total() < (N as u64) / 4,
        "high-confidence taken jumps must skip their joins: {}",
        s.wish_joins.total()
    );
}

#[test]
fn fig3c_code_runs_on_wishless_hardware() {
    // §3.4: the same binary must execute correctly with wish support off.
    let prog = fig3c_program();
    let cfg = MachineConfig {
        wish_enabled: false,
        ..MachineConfig::default()
    };
    let mut sim = Simulator::new(&prog, cfg);
    for (a, v) in random_sign_mem() {
        sim.preload_mem(a, v);
    }
    let res = sim.run().expect("halts");
    let mut m = Machine::new();
    for (a, v) in random_sign_mem() {
        m.mem.insert(a, v);
    }
    let expect = m.run(&prog, u64::MAX / 2).expect("halts");
    assert_eq!(res.final_mem, expect.mem);
    assert_eq!(res.stats.wish_branches_total(), 0, "no wish stats when disabled");
}
