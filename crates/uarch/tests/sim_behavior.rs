//! Timing-shape tests: the qualitative behaviours of §3 must emerge.
//!
//! * a hard-to-predict hammock: wish jump/join avoids flushes and beats the
//!   normal-branch binary;
//! * an easy-to-predict hammock: wish branches avoid the predication
//!   overhead that BASE-MAX pays;
//! * a short variable-trip loop: wish loops convert flushes into late
//!   exits.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
use wishbranch_ir::{FunctionBuilder, Interpreter, Module};
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};
use wishbranch_uarch::{MachineConfig, SimResult, Simulator};

const DATA_BASE: i64 = 0x1000;
const N: i32 = 3000;

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

fn test_config() -> MachineConfig {
    MachineConfig {
        rob_size: 128,
        max_cycles: 50_000_000,
        ..MachineConfig::default()
    }
}

/// A loop over an array with a data-dependent hammock. Each arm is large
/// enough (> N=5 µops) that the wish variant uses a wish jump/join.
fn hammock_module() -> Module {
    let mut f = FunctionBuilder::new("main");
    let e = f.entry_block();
    let body = f.new_block();
    let then_b = f.new_block();
    let else_b = f.new_block();
    let join = f.new_block();
    let exit = f.new_block();
    f.select(e);
    f.movi(r(19), DATA_BASE);
    f.movi(r(20), 0);
    f.movi(r(4), 0x9E37_79B9);
    f.jump(body);
    f.select(body);
    // xorshift PRNG in registers: unpredictable, cheap.
    f.alu(AluOp::Shl, r(3), r(4), Operand::imm(13));
    f.alu(AluOp::Xor, r(4), r(4), Operand::reg(3));
    f.alu(AluOp::Shr, r(3), r(4), Operand::imm(7));
    f.alu(AluOp::Xor, r(4), r(4), Operand::reg(3));
    f.alu(AluOp::Shl, r(3), r(4), Operand::imm(17));
    f.alu(AluOp::Xor, r(4), r(4), Operand::reg(3));
    // Condition value: warm-array bias + PRNG perturbation. With bias 0
    // the sign is a coin flip; with bias +1000 the branch is always taken.
    f.alu(AluOp::And, r(2), r(20), Operand::imm(63));
    f.alu(AluOp::Shl, r(2), r(2), Operand::imm(3));
    f.alu(AluOp::Add, r(2), r(2), Operand::reg(19));
    f.load(r(6), r(2), 0);
    f.alu(AluOp::And, r(7), r(4), Operand::imm(255));
    f.alu(AluOp::Sub, r(7), r(7), Operand::imm(128));
    f.alu(AluOp::Add, r(7), r(7), Operand::reg(6));
    f.branch(CmpOp::Ge, r(7), Operand::imm(0), then_b, else_b);
    f.select(else_b);
    f.alu(AluOp::Sub, r(5), r(5), Operand::reg(7));
    f.alu(AluOp::Xor, r(8), r(8), Operand::imm(3));
    f.alu(AluOp::Add, r(9), r(9), Operand::imm(2));
    f.alu(AluOp::Sub, r(10), r(10), Operand::imm(1));
    f.alu(AluOp::Xor, r(5), r(5), Operand::reg(8));
    f.alu(AluOp::Add, r(9), r(9), Operand::reg(10));
    f.jump(join);
    f.select(then_b);
    f.alu(AluOp::Add, r(5), r(5), Operand::reg(7));
    f.alu(AluOp::Xor, r(8), r(8), Operand::imm(5));
    f.alu(AluOp::Sub, r(9), r(9), Operand::imm(2));
    f.alu(AluOp::Add, r(10), r(10), Operand::imm(1));
    f.alu(AluOp::Xor, r(5), r(5), Operand::reg(10));
    f.alu(AluOp::Sub, r(9), r(9), Operand::reg(8));
    f.jump(join);
    f.select(join);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(N), body, exit);
    f.select(exit);
    f.store(r(5), r(19), 65536);
    f.halt();
    Module::new(vec![f.build()], 0).unwrap()
}

/// Input where the hammock condition is a coin flip (hard) or constant
/// (easy).
fn inputs(hard: bool) -> Vec<(u64, i64)> {
    // 64-entry warm bias array: 0 makes the hammock condition a coin flip,
    // +1000 pins it taken.
    let bias = if hard { 0 } else { 1000 };
    (0..64).map(|i| (DATA_BASE as u64 + i * 8, bias)).collect()
}

fn run(module: &Module, variant: BinaryVariant, mem: &[(u64, i64)]) -> SimResult {
    let profile = {
        let mut i = Interpreter::new();
        for &(a, v) in mem {
            i.mem.insert(a, v);
        }
        i.run(module, 100_000_000).unwrap().profile
    };
    let bin = compile(module, &profile, variant, &CompileOptions::default());
    let mut sim = Simulator::new(&bin.program, test_config());
    for &(a, v) in mem {
        sim.preload_mem(a, v);
    }
    sim.run().expect("halts")
}

#[test]
fn hard_hammock_wish_beats_normal_branches() {
    let m = hammock_module();
    let mem = inputs(true);
    let normal = run(&m, BinaryVariant::NormalBranch, &mem);
    let wish = run(&m, BinaryVariant::WishJumpJoin, &mem);

    assert!(
        normal.stats.flushes > (N as u64) / 10,
        "a coin-flip branch must flush often: {} flushes",
        normal.stats.flushes
    );
    assert!(
        wish.stats.flushes_avoided > 0,
        "low-confidence wish jumps must avoid flushes"
    );
    assert!(
        wish.stats.flushes < normal.stats.flushes / 2,
        "wish branches must remove most flushes: {} vs {}",
        wish.stats.flushes,
        normal.stats.flushes
    );
    assert!(
        wish.stats.cycles < normal.stats.cycles,
        "wish binary must be faster on hard branches: {} vs {} cycles",
        wish.stats.cycles,
        normal.stats.cycles
    );
}

#[test]
fn hard_hammock_predication_also_beats_normal() {
    let m = hammock_module();
    let mem = inputs(true);
    let normal = run(&m, BinaryVariant::NormalBranch, &mem);
    let pred = run(&m, BinaryVariant::BaseMax, &mem);
    assert!(
        pred.stats.cycles < normal.stats.cycles,
        "predication should win on coin-flip branches: {} vs {}",
        pred.stats.cycles,
        normal.stats.cycles
    );
    assert!(pred.stats.retired_guard_false > 0);
}

#[test]
fn easy_hammock_wish_avoids_predication_overhead() {
    let m = hammock_module();
    let mem = inputs(false);
    let normal = run(&m, BinaryVariant::NormalBranch, &mem);
    let pred = run(&m, BinaryVariant::BaseMax, &mem);
    let wish = run(&m, BinaryVariant::WishJumpJoin, &mem);

    // BASE-MAX always fetches both arms: visible µop overhead.
    assert!(pred.stats.retired_uops > normal.stats.retired_uops);
    // The wish binary detects high confidence and skips the useless arm
    // most of the time.
    assert!(
        wish.stats.retired_guard_false < pred.stats.retired_guard_false / 2,
        "high-confidence mode must skip most useless arms: {} vs {}",
        wish.stats.retired_guard_false,
        pred.stats.retired_guard_false
    );
    assert!(
        wish.stats.cycles < pred.stats.cycles,
        "wish must beat always-predicated on easy branches: {} vs {}",
        wish.stats.cycles,
        pred.stats.cycles
    );
    let jumps = wish.stats.wish_jumps;
    assert!(
        jumps.high_correct > jumps.low_correct,
        "an easy branch should mostly be estimated high confidence: {jumps:?}"
    );
}

/// An inner loop whose trip count varies unpredictably between 1 and 4,
/// inside a long outer loop — the wish-loop sweet spot (§3.2).
fn variable_loop_module() -> Module {
    let mut f = FunctionBuilder::new("main");
    let e = f.entry_block();
    let outer = f.new_block();
    let inner = f.new_block();
    let inner_exit = f.new_block();
    let exit = f.new_block();
    f.select(e);
    f.movi(r(19), DATA_BASE);
    f.movi(r(20), 0); // outer counter
    f.jump(outer);
    f.select(outer);
    // trip = 1 + (mem[i mod 256] & 3): data-dependent, unpredictable.
    f.alu(AluOp::And, r(2), r(20), Operand::imm(4095));
    f.alu(AluOp::Shl, r(2), r(2), Operand::imm(3));
    f.alu(AluOp::Add, r(2), r(2), Operand::reg(19));
    f.load(r(4), r(2), 0);
    f.alu(AluOp::And, r(4), r(4), Operand::imm(3));
    f.alu(AluOp::Add, r(4), r(4), Operand::imm(1));
    f.movi(r(21), 0); // inner counter
    f.jump(inner);
    f.select(inner);
    f.alu(AluOp::Add, r(5), r(5), Operand::reg(21));
    f.alu(AluOp::Add, r(21), r(21), Operand::imm(1));
    f.branch(CmpOp::Lt, r(21), Operand::reg(4), inner, inner_exit);
    f.select(inner_exit);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(N), outer, exit);
    f.select(exit);
    f.store(r(5), r(19), 65536);
    f.halt();
    Module::new(vec![f.build()], 0).unwrap()
}

#[test]
fn variable_trip_loops_show_late_exits() {
    let m = variable_loop_module();
    let mut rng = StdRng::seed_from_u64(7);
    let mem: Vec<(u64, i64)> = (0..4096)
        .map(|i| (DATA_BASE as u64 + i * 8, rng.gen_range(0..1000)))
        .collect();
    let wjl = run(&m, BinaryVariant::WishJumpJoinLoop, &mem);
    assert!(
        wjl.stats.wish_loops.total() > 0,
        "the inner loop must compile to a wish loop"
    );
    assert!(
        wjl.stats.loop_late_exits > 0,
        "variable trip counts must produce late exits: {:?}",
        wjl.stats
    );
    // Late exits avoid flushes.
    assert!(
        wjl.stats.flushes_avoided >= wjl.stats.loop_late_exits
    );
}

#[test]
fn variable_trip_loops_wish_beats_normal() {
    let m = variable_loop_module();
    let mut rng = StdRng::seed_from_u64(7);
    let mem: Vec<(u64, i64)> = (0..4096)
        .map(|i| (DATA_BASE as u64 + i * 8, rng.gen_range(0..1000)))
        .collect();
    let normal = run(&m, BinaryVariant::NormalBranch, &mem);
    let wjl = run(&m, BinaryVariant::WishJumpJoinLoop, &mem);
    assert!(
        wjl.stats.flushes < normal.stats.flushes,
        "wish loops must remove flushes: {} vs {}",
        wjl.stats.flushes,
        normal.stats.flushes
    );
    assert!(
        wjl.stats.cycles < normal.stats.cycles,
        "wish loops must win on unpredictable short loops: {} vs {}",
        wjl.stats.cycles,
        normal.stats.cycles
    );
}

#[test]
fn wish_stats_are_internally_consistent() {
    let m = hammock_module();

    // Easy input: the estimator must converge to high confidence.
    let easy = run(&m, BinaryVariant::WishJumpJoin, &inputs(false));
    let j = easy.stats.wish_jumps;
    assert_eq!(j.total(), 3000, "one wish jump per iteration");
    assert_eq!(j.high_mispredicted + j.low_mispredicted, 0, "easy branch never mispredicts");
    assert!(j.high_correct > 2 * j.low_correct, "estimator must converge: {j:?}");

    // Hard input: everything low confidence, all flushes avoided.
    let hard = run(&m, BinaryVariant::WishJumpJoin, &inputs(true));
    let j = hard.stats.wish_jumps;
    assert_eq!(j.total(), 3000);
    assert_eq!(j.high_correct + j.high_mispredicted, 0, "coin flip must never be high confidence");
    // An avoided flush happens whenever a forced not-taken low-confidence
    // jump/join was architecturally taken — ~50% of 3000 jumps plus ~50% of
    // 3000 joins on a coin flip. (The per-class counts use *predictor*
    // correctness, which differs in edge cases, so compare loosely.)
    assert!(
        hard.stats.flushes_avoided > 2500,
        "most coin-flip regions must avoid a flush: {}",
        hard.stats.flushes_avoided
    );
    assert!(hard.stats.flushes < 50, "almost nothing flushes: {}", hard.stats.flushes);
    // Retired mispredictions include the non-flushing ones.
    assert!(hard.stats.retired_mispredicted >= hard.stats.flushes_avoided);
}

#[test]
fn biased_loop_predictor_shifts_early_to_late_exits() {
    let m = variable_loop_module();
    let mut rng = StdRng::seed_from_u64(7);
    let mem: Vec<(u64, i64)> = (0..4096)
        .map(|i| (DATA_BASE as u64 + i * 8, rng.gen_range(0..1000)))
        .collect();
    let profile = {
        let mut i = Interpreter::new();
        for &(a, v) in &mem {
            i.mem.insert(a, v);
        }
        i.run(&m, 100_000_000).unwrap().profile
    };
    let bin = compile(&m, &profile, BinaryVariant::WishJumpJoinLoop, &CompileOptions::default());
    let run_with = |lp: Option<wishbranch_bpred::LoopPredConfig>| {
        let mut cfg = test_config();
        cfg.wish_loop_predictor = lp;
        let mut sim = Simulator::new(&bin.program, cfg);
        for &(a, v) in &mem {
            sim.preload_mem(a, v);
        }
        sim.run().expect("halts").stats
    };
    let plain = run_with(None);
    let biased = run_with(Some(wishbranch_bpred::LoopPredConfig {
        bias: 2,
        ..wishbranch_bpred::LoopPredConfig::default()
    }));
    // The biased predictor must shift mispredictions toward late exits
    // (the cheap class) relative to early exits.
    let ratio = |s: &wishbranch_uarch::SimStats| {
        s.loop_late_exits as f64 / (s.loop_early_exits + s.loop_late_exits).max(1) as f64
    };
    assert!(
        ratio(&biased) > ratio(&plain),
        "bias must favor late exits: {:.2} vs {:.2} (biased early={} late={}, plain early={} late={})",
        ratio(&biased),
        ratio(&plain),
        biased.loop_early_exits,
        biased.loop_late_exits,
        plain.loop_early_exits,
        plain.loop_late_exits,
    );
}
