//! The predicate-prediction baseline (Chuang & Calder, §6.1): predicted
//! predicates break predication's execution-delay overhead, wrong
//! predictions flush, and — the paper's argument — the useless predicated
//! instructions are still fetched, unlike with wish branches.

use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
use wishbranch_ir::{FunctionBuilder, Interpreter, Module};
use wishbranch_isa::exec::Machine;
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand, Program};
use wishbranch_uarch::{MachineConfig, SimResult, Simulator};

const DATA: i64 = 0x1000;
const N: i32 = 2500;

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

/// mcf-style kernel: an easy guard feeding a serialized (old-destination
/// chained) guarded load — the case predicate prediction was invented for.
fn serialization_module(hard: bool) -> Module {
    let mut f = FunctionBuilder::new("main");
    let e = f.entry_block();
    let body = f.new_block();
    let t = f.new_block();
    let el = f.new_block();
    let j = f.new_block();
    let exit = f.new_block();
    f.select(e);
    f.movi(r(19), DATA);
    f.movi(r(16), 0x77777);
    f.movi(r(20), 0);
    f.jump(body);
    f.select(body);
    f.alu(AluOp::And, r(2), r(20), Operand::imm(2047));
    f.alu(AluOp::Shl, r(2), r(2), Operand::imm(3));
    f.alu(AluOp::Add, r(2), r(2), Operand::reg(19));
    f.load(r(6), r(2), 0);
    if hard {
        // xorshift noise makes the predicate a coin flip.
        f.alu(AluOp::Shl, r(3), r(16), Operand::imm(13));
        f.alu(AluOp::Xor, r(16), r(16), Operand::reg(3));
        f.alu(AluOp::Shr, r(3), r(16), Operand::imm(7));
        f.alu(AluOp::Xor, r(16), r(16), Operand::reg(3));
        f.alu(AluOp::And, r(3), r(16), Operand::imm(1));
        f.alu(AluOp::Add, r(6), r(6), Operand::reg(3));
        f.branch(CmpOp::Eq, r(3), Operand::imm(1), t, el);
    } else {
        f.branch(CmpOp::Ge, r(6), Operand::imm(0), t, el);
    }
    f.select(el);
    for k in 0..6 {
        f.alu(AluOp::Sub, r(8 + k), r(8 + k), Operand::imm(1));
    }
    f.jump(j);
    f.select(t);
    // The critical guarded load: chained through r8's old destination.
    f.alu(AluOp::And, r(5), r(6), Operand::imm(2047));
    f.alu(AluOp::Shl, r(5), r(5), Operand::imm(3));
    f.alu(AluOp::Add, r(5), r(5), Operand::reg(19));
    f.load(r(8), r(5), 2048 * 8);
    f.alu(AluOp::Add, r(9), r(9), Operand::reg(8));
    f.alu(AluOp::Add, r(10), r(10), Operand::imm(1));
    f.jump(j);
    f.select(j);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(N), body, exit);
    f.select(exit);
    f.store(r(9), r(19), 65536);
    f.halt();
    Module::new(vec![f.build()], 0).unwrap()
}

fn inputs() -> Vec<(u64, i64)> {
    (0..4096u64)
        .map(|k| {
            let h = k.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 17;
            (DATA as u64 + k * 8, (h & 0x3ff) as i64)
        })
        .collect()
}

fn base_max(m: &Module) -> Program {
    let mut interp = Interpreter::new();
    for (a, v) in inputs() {
        interp.mem.insert(a, v);
    }
    let prof = interp.run(m, 100_000_000).unwrap().profile;
    compile(m, &prof, BinaryVariant::BaseMax, &CompileOptions::default()).program
}

fn run(program: &Program, predpred: bool) -> SimResult {
    let cfg = MachineConfig {
        predicate_prediction: predpred,
        ..MachineConfig::default()
    };
    let mut sim = Simulator::new(program, cfg);
    for (a, v) in inputs() {
        sim.preload_mem(a, v);
    }
    let res = sim.run().expect("halts");
    let mut m = Machine::new();
    for (a, v) in inputs() {
        m.mem.insert(a, v);
    }
    let expect = m.run(program, u64::MAX / 2).expect("halts");
    assert_eq!(res.final_mem, expect.mem, "predicate prediction broke the architecture");
    res
}

#[test]
fn predicate_prediction_recovers_serialization_on_easy_predicates() {
    let prog = base_max(&serialization_module(false));
    let plain = run(&prog, false);
    let predicted = run(&prog, true);
    assert!(predicted.stats.pred_value_predictions > 0);
    assert!(
        predicted.stats.cycles as f64 <= plain.stats.cycles as f64 * 0.98,
        "predicting an easy predicate must break the old-destination chain: {} vs {}",
        predicted.stats.cycles,
        plain.stats.cycles
    );
    // Easy predicate: almost no verification flushes.
    assert!(
        predicted.stats.pred_value_mispredictions * 50
            < predicted.stats.pred_value_predictions,
        "{} mispredictions of {}",
        predicted.stats.pred_value_mispredictions,
        predicted.stats.pred_value_predictions
    );
}

#[test]
fn predicate_prediction_flushes_on_hard_predicates() {
    let prog = base_max(&serialization_module(true));
    let plain = run(&prog, false);
    let predicted = run(&prog, true);
    // Coin-flip predicates: every other prediction is wrong, and each wrong
    // one flushes — the cost the paper says wish branches avoid.
    assert!(
        predicted.stats.pred_value_mispredictions > (N as u64) / 5,
        "hard predicates must mispredict: {:?}",
        predicted.stats.pred_value_mispredictions
    );
    assert!(
        predicted.stats.flushes > plain.stats.flushes,
        "those mispredictions flush: {} vs {}",
        predicted.stats.flushes,
        plain.stats.flushes
    );
}

#[test]
fn predicate_prediction_still_fetches_useless_instructions() {
    // Even with perfect-looking predicates, the predicated binary fetches
    // both arms — wish branches in high-confidence mode do not. (The
    // paper's key distinction from predicate prediction.)
    let m = serialization_module(false);
    let prog = base_max(&m);
    let predicted = run(&prog, true);
    assert!(
        predicted.stats.retired_guard_false > (N as u64) * 5,
        "predicate prediction cannot remove useless fetches: {}",
        predicted.stats.retired_guard_false
    );

    let mut interp = Interpreter::new();
    for (a, v) in inputs() {
        interp.mem.insert(a, v);
    }
    let prof = interp.run(&m, 100_000_000).unwrap().profile;
    let wjl = compile(&m, &prof, BinaryVariant::WishJumpJoinLoop, &CompileOptions::default());
    let mut sim = Simulator::new(&wjl.program, MachineConfig::default());
    for (a, v) in inputs() {
        sim.preload_mem(a, v);
    }
    let wish = sim.run().expect("halts");
    assert!(
        wish.stats.retired_guard_false < predicted.stats.retired_guard_false / 2,
        "wish high-confidence mode skips what predicate prediction must fetch: {} vs {}",
        wish.stats.retired_guard_false,
        predicted.stats.retired_guard_false
    );
}
