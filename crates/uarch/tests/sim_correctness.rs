//! The cycle simulator's retired architectural state must match the
//! functional reference ([`wishbranch_isa::exec::Machine`]) for every
//! compiled binary variant, every predication mechanism, and every oracle
//! knob — timing machinery must never change architecture.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
use wishbranch_ir::{FunctionBuilder, Interpreter, Module};
use wishbranch_isa::exec::Machine;
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand, Program};
use wishbranch_uarch::{MachineConfig, OracleConfig, PredMechanism, Simulator};

const DATA_BASE: i64 = 0x1000;

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

/// Small machine so tests run fast in debug builds.
fn small_config() -> MachineConfig {
    MachineConfig {
        pipeline_depth: 10,
        rob_size: 64,
        max_cycles: 20_000_000,
        ..MachineConfig::default()
    }
}

fn run_sim(
    program: &Program,
    cfg: MachineConfig,
    init_mem: &[(u64, i64)],
) -> wishbranch_uarch::SimResult {
    let mut sim = Simulator::new(program, cfg);
    for &(a, v) in init_mem {
        sim.preload_mem(a, v);
    }
    sim.run().expect("simulation should halt")
}

fn run_ref(program: &Program, init_mem: &[(u64, i64)]) -> wishbranch_isa::exec::ExecResult {
    let mut m = Machine::new();
    for &(a, v) in init_mem {
        m.mem.insert(a, v);
    }
    m.run(program, 100_000_000).expect("reference halts")
}

fn assert_arch_match(program: &Program, cfg: MachineConfig, init_mem: &[(u64, i64)], what: &str) {
    let reference = run_ref(program, init_mem);
    let sim = run_sim(program, cfg, init_mem);
    assert_eq!(sim.final_mem, reference.mem, "{what}: memory diverged");
    for reg in 1..10 {
        assert_eq!(
            sim.final_regs[reg], reference.regs[reg],
            "{what}: r{reg} diverged"
        );
    }
    assert_eq!(
        sim.stats.retired_uops, reference.steps,
        "{what}: retired µop count diverged (select expansion counts extra, \
         so this is only checked for C-style whole-µop machines)"
    );
}

/// Structured random programs — same generator family as the compiler's
/// equivalence tests, kept small enough for the cycle simulator in debug
/// builds.
fn random_module(seed: u64) -> Module {
    let mut f = FunctionBuilder::new("main");
    let entry = f.entry_block();
    f.select(entry);
    f.movi(r(19), DATA_BASE);
    for i in 1..9 {
        f.load(r(i), r(19), i32::from(i) * 8);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let mut next_counter = 0u8;
    gen_region(&mut f, &mut rng, 2, &mut next_counter);
    for i in 1..9 {
        f.store(r(i), r(19), 128 + i32::from(i) * 8);
    }
    f.halt();
    Module::new(vec![f.build()], 0).unwrap()
}

fn gen_region(f: &mut FunctionBuilder, rng: &mut StdRng, depth: u32, next_counter: &mut u8) {
    for _ in 0..rng.gen_range(1..4) {
        let c = rng.gen_range(0..10);
        if depth > 0 && c < 3 {
            // if/else
            let lhs = r(rng.gen_range(1..9));
            let op = [CmpOp::Lt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne][rng.gen_range(0..4usize)];
            let then_b = f.new_block();
            let else_b = f.new_block();
            let join = f.new_block();
            f.branch(op, lhs, Operand::imm(rng.gen_range(-5..6)), then_b, else_b);
            f.select(else_b);
            gen_region(f, rng, depth - 1, next_counter);
            f.jump(join);
            f.select(then_b);
            gen_region(f, rng, depth - 1, next_counter);
            f.jump(join);
            f.select(join);
        } else if depth > 0 && c < 5 && *next_counter < 28 {
            // counted loop
            let counter = r(20 + *next_counter);
            *next_counter += 1;
            let trip = rng.gen_range(1..6);
            let body = f.new_block();
            let exit = f.new_block();
            f.movi(counter, 0);
            f.jump(body);
            f.select(body);
            for _ in 0..rng.gen_range(1..4) {
                emit_straight(f, rng);
            }
            f.alu(AluOp::Add, counter, counter, Operand::imm(1));
            f.branch(CmpOp::Lt, counter, Operand::imm(trip), body, exit);
            f.select(exit);
        } else {
            emit_straight(f, rng);
        }
    }
}

fn emit_straight(f: &mut FunctionBuilder, rng: &mut StdRng) {
    match rng.gen_range(0..4) {
        0 => {
            let (d, s) = (r(rng.gen_range(1..9)), r(rng.gen_range(1..9)));
            let op = [AluOp::Add, AluOp::Sub, AluOp::Xor, AluOp::Mul][rng.gen_range(0..4usize)];
            f.alu(op, d, s, Operand::Imm(rng.gen_range(-7..8)));
        }
        1 => f.movi(r(rng.gen_range(1..9)), rng.gen_range(-100..100)),
        2 => f.store(r(rng.gen_range(1..9)), r(19), rng.gen_range(0..16) * 8),
        _ => f.load(r(rng.gen_range(1..9)), r(19), rng.gen_range(0..16) * 8),
    }
}

fn init_mem(seed: u64) -> Vec<(u64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xfeed);
    (0..32)
        .map(|i| (DATA_BASE as u64 + i * 8, rng.gen_range(-50..50)))
        .collect()
}

#[test]
fn all_variants_cstyle_match_reference() {
    for seed in 0..12 {
        let module = random_module(seed);
        let profile = {
            let mut i = Interpreter::new();
            for &(a, v) in &init_mem(seed) {
                i.mem.insert(a, v);
            }
            i.run(&module, 10_000_000).unwrap().profile
        };
        for variant in BinaryVariant::ALL_WITH_EXTENSIONS {
            let bin = compile(&module, &profile, variant, &CompileOptions::default());
            assert_arch_match(
                &bin.program,
                small_config(),
                &init_mem(seed),
                &format!("seed {seed} variant {variant}"),
            );
        }
    }
}

#[test]
fn select_uop_mechanism_matches_reference() {
    for seed in [1u64, 4, 7] {
        let module = random_module(seed);
        let profile = Interpreter::new().run(&module, 10_000_000).unwrap().profile;
        for variant in [BinaryVariant::BaseMax, BinaryVariant::WishJumpJoinLoop] {
            let bin = compile(&module, &profile, variant, &CompileOptions::default());
            let mut cfg = small_config();
            cfg.pred_mechanism = PredMechanism::SelectUop;
            let reference = run_ref(&bin.program, &init_mem(seed));
            let sim = run_sim(&bin.program, cfg, &init_mem(seed));
            assert_eq!(sim.final_mem, reference.mem, "seed {seed} {variant}");
            // µop counts differ (select expansion), but never by less.
            assert!(sim.stats.retired_uops >= reference.steps);
        }
    }
}

#[test]
fn oracle_knobs_preserve_architecture() {
    let module = random_module(3);
    let profile = Interpreter::new().run(&module, 10_000_000).unwrap().profile;
    let bin = compile(&module, &profile, BinaryVariant::BaseMax, &CompileOptions::default());
    let oracles = [
        OracleConfig {
            perfect_branch_prediction: true,
            ..OracleConfig::default()
        },
        OracleConfig {
            no_pred_dependencies: true,
            ..OracleConfig::default()
        },
        OracleConfig {
            no_pred_dependencies: true,
            no_false_predicate_fetch: true,
            ..OracleConfig::default()
        },
        OracleConfig {
            perfect_confidence: true,
            ..OracleConfig::default()
        },
    ];
    let reference = run_ref(&bin.program, &init_mem(3));
    for (i, o) in oracles.into_iter().enumerate() {
        let mut cfg = small_config();
        cfg.oracles = o;
        let sim = run_sim(&bin.program, cfg, &init_mem(3));
        assert_eq!(sim.final_mem, reference.mem, "oracle {i}");
    }
}

#[test]
fn perfect_branch_prediction_never_flushes() {
    let module = random_module(5);
    let profile = Interpreter::new().run(&module, 10_000_000).unwrap().profile;
    let bin = compile(
        &module,
        &profile,
        BinaryVariant::NormalBranch,
        &CompileOptions::default(),
    );
    let mut cfg = small_config();
    cfg.oracles.perfect_branch_prediction = true;
    let sim = run_sim(&bin.program, cfg, &init_mem(5));
    assert_eq!(sim.stats.flushes, 0);
    assert_eq!(sim.stats.squashed_uops, 0);
}

/// A loop over a data-dependent hammock — guaranteed guard-false NOPs under
/// BASE-MAX.
fn hammock_loop_module() -> Module {
    let mut f = FunctionBuilder::new("main");
    let e = f.entry_block();
    let body = f.new_block();
    let then_b = f.new_block();
    let else_b = f.new_block();
    let join = f.new_block();
    let exit = f.new_block();
    f.select(e);
    f.movi(r(19), DATA_BASE);
    f.movi(r(20), 0);
    f.jump(body);
    f.select(body);
    f.alu(AluOp::And, r(2), r(20), Operand::imm(7));
    f.alu(AluOp::Shl, r(3), r(2), Operand::imm(3));
    f.alu(AluOp::Add, r(3), r(3), Operand::reg(19));
    f.load(r(4), r(3), 0);
    f.branch(CmpOp::Ge, r(4), Operand::imm(0), then_b, else_b);
    f.select(else_b);
    f.alu(AluOp::Sub, r(5), r(5), Operand::reg(4));
    f.alu(AluOp::Xor, r(5), r(5), Operand::imm(3));
    f.jump(join);
    f.select(then_b);
    f.alu(AluOp::Add, r(5), r(5), Operand::reg(4));
    f.alu(AluOp::Mul, r(5), r(5), Operand::imm(3));
    f.jump(join);
    f.select(join);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(200), body, exit);
    f.select(exit);
    f.store(r(5), r(19), 512);
    f.halt();
    Module::new(vec![f.build()], 0).unwrap()
}

#[test]
fn no_fetch_oracle_removes_guard_false_uops() {
    let module = hammock_loop_module();
    let profile = Interpreter::new().run(&module, 10_000_000).unwrap().profile;
    let bin = compile(&module, &profile, BinaryVariant::BaseMax, &CompileOptions::default());

    let plain = run_sim(&bin.program, small_config(), &init_mem(6));
    let mut cfg = small_config();
    cfg.oracles.no_false_predicate_fetch = true;
    cfg.oracles.no_pred_dependencies = true;
    let ideal = run_sim(&bin.program, cfg, &init_mem(6));
    assert!(
        bin.report.regions_predicated > 0,
        "BASE-MAX must predicate the hammock"
    );
    assert!(plain.stats.retired_guard_false > 0, "predicated code has NOPs");
    assert_eq!(ideal.stats.retired_guard_false, 0);
    assert!(ideal.stats.retired_uops < plain.stats.retired_uops);
    assert!(
        ideal.stats.cycles <= plain.stats.cycles,
        "removing all predication overhead cannot hurt: {} vs {}",
        ideal.stats.cycles,
        plain.stats.cycles
    );
    // Architecture unchanged.
    assert_eq!(ideal.final_mem, plain.final_mem);
}

#[test]
fn wish_hardware_disabled_still_correct() {
    // §3.4 backward compatibility: a wish binary on a machine without wish
    // support behaves like normal branches.
    let module = random_module(8);
    let profile = Interpreter::new().run(&module, 10_000_000).unwrap().profile;
    let bin = compile(
        &module,
        &profile,
        BinaryVariant::WishJumpJoinLoop,
        &CompileOptions::default(),
    );
    let mut cfg = small_config();
    cfg.wish_enabled = false;
    assert_arch_match(&bin.program, cfg, &init_mem(8), "wish disabled");
}

#[test]
fn deterministic_across_runs() {
    let module = random_module(9);
    let profile = Interpreter::new().run(&module, 10_000_000).unwrap().profile;
    let bin = compile(
        &module,
        &profile,
        BinaryVariant::WishJumpJoinLoop,
        &CompileOptions::default(),
    );
    let a = run_sim(&bin.program, small_config(), &init_mem(9));
    let b = run_sim(&bin.program, small_config(), &init_mem(9));
    assert_eq!(a.stats, b.stats);
}
