//! Machine-parameter scaling claims (Figs. 14/15): wish-branch benefit
//! grows with pipeline depth (flushes cost more) and holds across window
//! sizes — plus select-µop accounting (Fig. 16's overhead mechanism).

use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
use wishbranch_ir::{FunctionBuilder, Interpreter, Module};
use wishbranch_isa::{AluOp, CmpOp, Gpr, Operand};
use wishbranch_uarch::{MachineConfig, PredMechanism, Simulator};

const DATA: i64 = 0x1000;
const N: i32 = 2500;

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

/// Coin-flip hammock driven by a register PRNG (branch-bound workload).
fn hard_module() -> Module {
    let mut f = FunctionBuilder::new("main");
    let e = f.entry_block();
    let body = f.new_block();
    let t = f.new_block();
    let el = f.new_block();
    let j = f.new_block();
    let exit = f.new_block();
    f.select(e);
    f.movi(r(19), DATA);
    f.movi(r(16), 0x12345);
    f.movi(r(20), 0);
    f.jump(body);
    f.select(body);
    f.alu(AluOp::Shl, r(3), r(16), Operand::imm(13));
    f.alu(AluOp::Xor, r(16), r(16), Operand::reg(3));
    f.alu(AluOp::Shr, r(3), r(16), Operand::imm(7));
    f.alu(AluOp::Xor, r(16), r(16), Operand::reg(3));
    f.alu(AluOp::And, r(7), r(16), Operand::imm(1));
    f.branch(CmpOp::Eq, r(7), Operand::imm(1), t, el);
    f.select(el);
    for k in 0..4 {
        f.alu(AluOp::Add, r(8 + k), r(8 + k), Operand::imm(1));
    }
    f.jump(j);
    f.select(t);
    for k in 0..4 {
        f.alu(AluOp::Sub, r(8 + k), r(8 + k), Operand::imm(2));
    }
    f.jump(j);
    f.select(j);
    f.alu(AluOp::Add, r(20), r(20), Operand::imm(1));
    f.branch(CmpOp::Lt, r(20), Operand::imm(N), body, exit);
    f.select(exit);
    for k in 0..4 {
        f.store(r(8 + k), r(19), i32::from(k) * 8);
    }
    f.halt();
    Module::new(vec![f.build()], 0).unwrap()
}

fn cycles(module: &Module, variant: BinaryVariant, cfg: &MachineConfig) -> u64 {
    let profile = Interpreter::new().run(module, 50_000_000).unwrap().profile;
    let bin = compile(module, &profile, variant, &CompileOptions::default());
    let mut sim = Simulator::new(&bin.program, cfg.clone());
    sim.run().expect("halts").stats.cycles
}

#[test]
fn wish_benefit_grows_with_pipeline_depth() {
    // Fig. 15: deeper pipelines make flushes costlier, so the wish binary's
    // relative gain over normal branches must grow with depth.
    let m = hard_module();
    let mut gains = Vec::new();
    for depth in [10u64, 30] {
        let cfg = MachineConfig::default().with_window(256).with_depth(depth);
        let normal = cycles(&m, BinaryVariant::NormalBranch, &cfg);
        let wish = cycles(&m, BinaryVariant::WishJumpJoinLoop, &cfg);
        gains.push(1.0 - wish as f64 / normal as f64);
    }
    assert!(
        gains[1] > gains[0],
        "gain must grow with depth: {gains:?}"
    );
    assert!(gains[1] > 0.1, "deep-pipe gain should be substantial: {gains:?}");
}

#[test]
fn wish_wins_at_every_window_size() {
    // Fig. 14: the win holds across 128/256/512-entry windows.
    let m = hard_module();
    for window in [128usize, 256, 512] {
        let cfg = MachineConfig::default().with_window(window);
        let normal = cycles(&m, BinaryVariant::NormalBranch, &cfg);
        let wish = cycles(&m, BinaryVariant::WishJumpJoinLoop, &cfg);
        assert!(
            wish < normal,
            "window {window}: wish must win ({wish} vs {normal})"
        );
    }
}

#[test]
fn select_uop_mechanism_costs_extra_uops_but_frees_the_compute() {
    // Fig. 16's mechanism: select-µop retires more µops (the extra selects)
    // than C-style for the same predicated binary.
    let m = hard_module();
    let profile = Interpreter::new().run(&m, 50_000_000).unwrap().profile;
    let bin = compile(&m, &profile, BinaryVariant::BaseMax, &CompileOptions::default());

    let run = |mech: PredMechanism| {
        let cfg = MachineConfig {
            pred_mechanism: mech,
            ..MachineConfig::default()
        };
        let mut sim = Simulator::new(&bin.program, cfg);
        sim.run().expect("halts").stats
    };
    let cstyle = run(PredMechanism::CStyle);
    let select = run(PredMechanism::SelectUop);
    assert!(
        select.retired_uops > cstyle.retired_uops,
        "select-µop must retire extra µops: {} vs {}",
        select.retired_uops,
        cstyle.retired_uops
    );
    assert!(select.retired_select_uops > 0);
    assert_eq!(cstyle.retired_select_uops, 0);
    // The guarded arms here are ~8 µops/iteration; the select expansion
    // roughly matches that count.
    let expansion = select.retired_uops - cstyle.retired_uops;
    assert_eq!(expansion, select.retired_select_uops);
}
