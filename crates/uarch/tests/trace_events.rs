//! Pipeline trace invariants: per µop, events appear in stage order with
//! non-decreasing cycles; retirement is in program order; tracing never
//! changes timing.

use std::collections::HashMap;
use wishbranch_isa::{AluOp, CmpOp, Gpr, Insn, Operand, PredReg, Program, ProgramBuilder};
use wishbranch_uarch::trace::{render_trace, TraceKind};
use wishbranch_uarch::{MachineConfig, Simulator};

fn r(i: u8) -> Gpr {
    Gpr::new(i)
}

fn looped_program() -> Program {
    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let t = b.label("t");
    let j = b.label("j");
    let done = b.label("done");
    b.push(Insn::mov_imm(r(16), 0x77));
    b.push(Insn::mov_imm(r(20), 0));
    b.bind(top);
    b.push(Insn::alu(AluOp::Mul, r(16), r(16), Operand::imm(75)));
    b.push(Insn::alu(AluOp::And, r(7), r(16), Operand::imm(4)));
    b.push(Insn::cmp(CmpOp::Eq, PredReg::new(1), r(7), Operand::imm(4)));
    b.push_cond_branch(PredReg::new(1), true, t, None);
    b.push(Insn::alu(AluOp::Add, r(8), r(8), Operand::imm(1)));
    b.push_jump(j);
    b.bind(t);
    b.push(Insn::alu(AluOp::Sub, r(8), r(8), Operand::imm(1)));
    b.bind(j);
    b.push(Insn::alu(AluOp::Add, r(20), r(20), Operand::imm(1)));
    b.push(Insn::cmp(CmpOp::Lt, PredReg::new(2), r(20), Operand::imm(150)));
    b.push_cond_branch(PredReg::new(2), true, top, None);
    b.bind(done);
    b.push(Insn::halt());
    b.build()
}

#[test]
fn trace_respects_stage_order_and_program_order_retirement() {
    let prog = looped_program();
    let mut sim = Simulator::new(&prog, MachineConfig::default());
    sim.enable_trace();
    let res = sim.run().expect("halts");
    let trace = sim.take_trace();
    assert!(!trace.is_empty());

    // Per-seq stage cycles.
    let mut stages: HashMap<u64, [Option<u64>; 4]> = HashMap::new();
    let mut last_retired_seq = 0u64;
    let mut retires = 0u64;
    for e in &trace {
        let slot = match e.kind {
            TraceKind::Fetch => 0,
            TraceKind::Dispatch => 1,
            TraceKind::Issue => 2,
            TraceKind::Retire => 3,
            TraceKind::Flush => continue,
        };
        stages.entry(e.seq).or_default()[slot] = Some(e.cycle);
        if e.kind == TraceKind::Retire {
            assert!(
                e.seq > last_retired_seq,
                "retirement must be in program order: {} after {}",
                e.seq,
                last_retired_seq
            );
            last_retired_seq = e.seq;
            retires += 1;
        }
    }
    assert_eq!(retires, res.stats.retired_uops, "every retirement traced");

    let depth = MachineConfig::default().pipeline_depth;
    for (seq, s) in &stages {
        if let [Some(f), Some(d), i, rt] = s {
            assert!(
                d >= &(f + depth),
                "seq {seq}: dispatch before front-end latency ({f} → {d})"
            );
            if let Some(i) = i {
                assert!(i >= d, "seq {seq}: issue before dispatch");
                if let Some(rt) = rt {
                    assert!(rt >= i, "seq {seq}: retire before issue");
                }
            }
        }
    }

    // Squashed µops are fetched but never retired.
    let fetched = trace.iter().filter(|e| e.kind == TraceKind::Fetch).count() as u64;
    assert_eq!(fetched, res.stats.fetched_uops);
    assert!(fetched >= res.stats.retired_uops);

    // Flush events match the flush count and carry squash counts.
    let flushes: Vec<_> = trace.iter().filter(|e| e.kind == TraceKind::Flush).collect();
    assert_eq!(flushes.len() as u64, res.stats.flushes);

    // The renderer produces one line per event.
    let text = render_trace(&trace[..20.min(trace.len())]);
    assert_eq!(text.lines().count(), 20.min(trace.len()));
}

#[test]
fn tracing_does_not_change_timing() {
    let prog = looped_program();
    let mut plain = Simulator::new(&prog, MachineConfig::default());
    let a = plain.run().expect("halts");
    let mut traced = Simulator::new(&prog, MachineConfig::default());
    traced.enable_trace();
    let b = traced.run().expect("halts");
    assert_eq!(a.stats, b.stats, "tracing must be timing-neutral");
}
