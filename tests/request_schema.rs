//! Golden snapshot of the typed request schema (`wishbranch.request/v1`),
//! sibling of `report_schema.rs`: the server, the CLI and any downstream
//! tooling all speak this envelope, so key names and the canonical field
//! order are API — a failure here means bumping the schema version, not
//! drifting the emitter.

use wishbranch_core::{Experiment, FaultPlan, RequestError, SweepRequest};
use wishbranch_workloads::InputSet;

#[test]
fn canonical_json_is_a_parse_fixed_point() {
    let mut req = SweepRequest::new(vec![Experiment::Fig10, Experiment::Tab5]);
    req.tenant = "team-a".into();
    req.scale = 800;
    req.quick = true;
    req.workers = Some(3);
    req.oracle = true;
    req.train = Some(InputSet::C);
    req.window = Some(256);
    req.depth = Some(20);
    req.wish_jump_threshold = Some(7);
    req.wish_loop_body_max = Some(40);
    req.fault_plan = Some(FaultPlan::parse("panic@3,abort@9").unwrap());
    req.budgets.cycles = Some(5_000_000);
    req.budgets.wall_ms = Some(60_000);

    let json = req.to_json();
    // Golden envelope: schema tag first, then the identity fields in
    // canonical order.
    assert!(
        json.starts_with("{\"schema\":\"wishbranch.request/v1\",\"tenant\":\"team-a\","),
        "envelope drifted: {json}"
    );
    assert!(json.contains("\"experiments\":[\"fig10\",\"tab5\"]"));
    assert!(json.contains("\"train\":\"C\""));
    assert!(json.contains("\"fault_plan\":\"panic@3,abort@9\""));
    assert!(json.contains("\"budgets\":{\"cycles\":5000000,\"wall_ms\":60000}"));

    // Round trip: parse(to_json()) == identity, and the canonical form is
    // a fixed point (serializing the parse reproduces it byte for byte).
    let back = SweepRequest::parse(&json).expect("canonical JSON parses");
    assert_eq!(back, req);
    assert_eq!(back.to_json(), json);

    // The fingerprint is a pure function of the canonical form.
    assert_eq!(back.fingerprint(), req.fingerprint());
    let mut other = req.clone();
    other.scale = 801;
    assert_ne!(other.fingerprint(), req.fingerprint());
}

#[test]
fn defaults_round_trip_minimally() {
    let req = SweepRequest::new(vec![Experiment::Fig12]);
    let json = req.to_json();
    let back = SweepRequest::parse(&json).expect("default request parses");
    assert_eq!(back, req);
    assert_eq!(back.tenant, "local");
    assert_eq!(back.scale, 4000);
    assert_eq!(back.workers, None);
    assert_eq!(back.budgets.cycles, None);
}

#[test]
fn parse_rejects_garbage_with_typed_errors() {
    let cases: [(&str, &str); 5] = [
        ("not json at all", "bad_json"),
        ("{\"schema\":\"wishbranch.request/v2\",\"experiments\":[\"fig10\"]}", "bad_schema"),
        ("{\"schema\":\"wishbranch.request/v1\",\"experiments\":[\"fig99\"]}", "unknown_experiment"),
        ("{\"schema\":\"wishbranch.request/v1\",\"experiments\":[]}", "no_experiments"),
        (
            "{\"schema\":\"wishbranch.request/v1\",\"experiments\":[\"fig10\"],\"bogus\":1}",
            "bad_field",
        ),
    ];
    for (input, kind) in cases {
        let err = SweepRequest::parse(input).expect_err(input);
        assert_eq!(err.kind(), kind, "wrong error kind for {input}: {err}");
    }
}

#[test]
fn validate_catches_unrunnable_requests() {
    let mut req = SweepRequest::new(vec![]);
    assert!(matches!(req.validate(), Err(RequestError::NoExperiments)));
    req.experiments.push(Experiment::Fig10);
    req.workers = Some(0);
    assert!(matches!(req.validate(), Err(RequestError::BadField { .. })));
}
