//! Golden-figure regression: headline averages of Figs. 10 and 12 at a
//! reduced, fully deterministic scale.
//!
//! EXPERIMENTS.md records the paper-scale (WISHBRANCH_SCALE=4000) headline
//! numbers — Fig. 10 wish-jj AVGnomcf 0.918, Fig. 12 wish-jjl AVG 0.827,
//! BASE-DEF 0.892. Simulating at that scale is minutes of work, so this
//! test snapshots the same averages at scale 150 on the paper machine
//! (values measured from the engine, which is bit-identical to the serial
//! spine — see `engine_equivalence.rs`). The whole stack is deterministic,
//! so a drift beyond the stated tolerance means a real change to the
//! compiler, simulator, or workloads — rerun the paper-scale sweep and
//! update both this snapshot and EXPERIMENTS.md if the change is intended.

use proptest::prelude::*;
use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{
    compile_adaptive_variant, compile_variant, simulate, Experiment, ExperimentConfig, FigureData,
    Report, ReportData, SweepRunner,
};
use wishbranch_uarch::{MachineConfig, PredMechanism, SimResult};
use wishbranch_workloads::{suite, InputSet};

const SCALE: i32 = 150;

/// Tolerance on each snapshot value. Generous enough to survive benign
/// heuristic retunes, tight enough to catch a broken mechanism (breaking
/// wish-loop conversion moves the Fig. 12 averages by > 0.02).
const TOL: f64 = 0.015;

fn avg_row<'a>(fig: &'a FigureData, which: &str, series: &str) -> f64 {
    let idx = fig
        .series
        .iter()
        .position(|s| s == series)
        .unwrap_or_else(|| panic!("series {series:?} missing from {:?}", fig.series));
    fig.rows
        .iter()
        .find(|r| r.name == which)
        .unwrap_or_else(|| panic!("{which} row missing"))
        .values[idx]
}

fn assert_close(label: &str, got: f64, want: f64) {
    assert!(
        (got - want).abs() <= TOL,
        "{label}: got {got:.6}, snapshot {want:.6} (tolerance ±{TOL})"
    );
}

/// Runs an experiment through the unified catalog API and unwraps the
/// figure payload — so the golden values below also pin the
/// `Experiment::run` → `Report` path, not just the raw figure functions.
fn run_figure(exp: Experiment, runner: &SweepRunner) -> (Report, FigureData) {
    let report = exp.run(runner);
    let ReportData::Figure(fig) = report.data.clone() else {
        panic!("{}: expected a figure payload", report.id)
    };
    (report, fig)
}

#[test]
fn figure_10_and_12_headline_averages_match_snapshot() {
    let ec = ExperimentConfig::paper(SCALE);
    let runner = SweepRunner::new(&ec);
    let (report10, fig10) = run_figure(Experiment::Fig10, &runner);
    let (_, fig12) = run_figure(Experiment::Fig12, &runner);

    // The report serializes the exact simulated values (six decimals).
    assert!(
        report10.to_json().contains(&format!(
            "{:.6}",
            avg_row(&fig10, "AVG", "BASE-DEF")
        )),
        "fig10 JSON must carry the snapshot value verbatim"
    );

    // Fig. 10 snapshot (scale 150).
    assert_close("fig10 BASE-DEF AVG", avg_row(&fig10, "AVG", "BASE-DEF"), 1.001474);
    assert_close(
        "fig10 wish-jj AVGnomcf",
        avg_row(&fig10, "AVGnomcf", "wish-jj (real-conf)"),
        0.982445,
    );
    assert_close(
        "fig10 wish-jj perf-conf AVG",
        avg_row(&fig10, "AVG", "wish-jj (perf-conf)"),
        0.974505,
    );

    // Fig. 12 snapshot (scale 150).
    assert_close(
        "fig12 wish-jjl AVG",
        avg_row(&fig12, "AVG", "wish-jjl (real-conf)"),
        0.943934,
    );
    assert_close(
        "fig12 wish-jjl AVGnomcf",
        avg_row(&fig12, "AVGnomcf", "wish-jjl (real-conf)"),
        0.917767,
    );

    // The paper's qualitative headline must hold at any scale: adding wish
    // loops beats both the predicated baseline and the jump/join binary.
    let wjjl = avg_row(&fig12, "AVGnomcf", "wish-jjl (real-conf)");
    assert!(
        wjjl < avg_row(&fig12, "AVGnomcf", "BASE-DEF"),
        "wish-jjl must beat BASE-DEF"
    );
    assert!(
        wjjl < avg_row(&fig12, "AVGnomcf", "wish-jj (real-conf)"),
        "wish loops must add benefit over jump/join alone"
    );
    assert!(wjjl < 1.0, "wish-jjl must beat the normal-branch binary");
}

// ---------------------------------------------------------------------------
// Randomized old-vs-new simulator equivalence.
//
// The hot-path overhaul (pre-decoded µop cache, flat state tables, wakeup
// lists) must not move a single architected number. These fingerprints were
// generated with the pre-overhaul simulator over a seeded random matrix of
// benchmark × variant × machine-config jobs; the rewritten simulator must
// reproduce every `SimResult` — stats, cycle accounting, hot-site table and
// final architectural state — byte for byte.
//
// To regenerate after an *intended* architected change:
//   cargo test --release --test golden_figures regenerate_random_job_goldens -- --ignored --nocapture

/// Scale for the randomized jobs (small: the matrix runs many machines).
const RJ_SCALE: i32 = 40;

/// Number of randomized jobs in the golden matrix.
const RJ_CASES: u64 = 24;

/// Pre-overhaul `SimResult` fingerprints, one per randomized job.
const RJ_GOLDEN: [u64; RJ_CASES as usize] = [
    0xd9bd_81d0_f5f3_6d33,
    0x7a29_d3d9_9eee_4c9c,
    0x92f6_ad70_f4b5_1782,
    0xc972_5c86_cf8b_ccb9,
    0x768f_b5ab_dcd2_e6aa,
    0xac76_cac9_ed00_b71f,
    0xf751_bd5a_2a1e_bbcc,
    0x29e7_d0b0_7418_dfe9,
    0x0306_3a37_ba34_3964,
    0xd765_7f74_abab_f03d,
    0x213f_61fc_5f75_9037,
    0x9fba_2bd1_9e0e_8bac,
    0xb123_158c_84d6_7e52,
    0x01ab_c847_5a77_6cb6,
    0x4f94_6c24_c135_d768,
    0x00e0_ce56_389d_4041,
    0x9540_4fa5_7960_240a,
    0x60fc_5c40_ffc2_19c4,
    0xbb81_67fb_9ed1_af03,
    0xe3f5_98d3_d9cc_e828,
    0xab41_005d_7bbe_4f90,
    0x077f_c5d1_2e46_9411,
    0xf632_42a1_bb9c_e9df,
    0xf6f7_00b1_16e1_3774,
];

/// splitmix64: the deterministic stream the job matrix is drawn from.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// FNV-1a-64 over a canonical byte serialization of a whole [`SimResult`]:
/// every stats field in declaration order, the cycle-accounting rows, the
/// hot-site table, cache stats, and the final architectural state.
fn fingerprint(r: &SimResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut put = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let s = &r.stats;
    for v in [
        s.cycles,
        s.retired_uops,
        s.retired_guard_false,
        s.retired_select_uops,
        s.retired_cond_branches,
        s.flushes,
        s.retired_mispredicted,
        s.flushes_avoided,
        s.fetched_uops,
        s.fetch_idle_cycles,
        s.fetch_idle_imiss,
        s.fetch_idle_redirect,
        s.fetch_idle_queue_full,
        s.fetch_idle_blocked,
        s.dispatch_idle_cycles,
        s.retire_idle_cycles,
        s.squashed_uops,
        s.dhp_predications,
        s.dhp_flushes_avoided,
        s.pred_value_predictions,
        s.pred_value_mispredictions,
    ] {
        put(v);
    }
    for w in [&s.wish_jumps, &s.wish_joins, &s.wish_loops] {
        put(w.high_correct);
        put(w.high_mispredicted);
        put(w.low_correct);
        put(w.low_mispredicted);
    }
    put(s.loop_early_exits);
    put(s.loop_late_exits);
    put(s.loop_no_exits);
    // The nine flat-model accounting causes, explicitly — NOT rows(), so
    // adding hierarchy-only causes (mshr_full/miss_pending, zero for every
    // golden job because the knobs default off) cannot silently shift the
    // hash. The assert pins that precondition.
    let a = &s.cycle_accounting;
    assert_eq!(
        (a.mshr_full, a.miss_pending),
        (0, 0),
        "golden jobs run the flat memory model; hierarchy causes must be zero"
    );
    for v in [
        a.useful_retire,
        a.guard_false_retire,
        a.select_uop_retire,
        a.exec_wait,
        a.rob_stall,
        a.flush_recovery,
        a.fetch_imiss,
        a.fetch_redirect,
        a.frontend_fill,
    ] {
        put(v);
    }
    for (&pc, c) in &s.hot_sites {
        put(u64::from(pc));
        put(c.flushes);
        put(c.flushes_avoided);
        put(c.guard_false_uops);
    }
    for c in [&s.icache, &s.l1d, &s.l2] {
        put(c.hits);
        put(c.misses);
        put(c.probes);
    }
    for &v in &r.final_regs {
        put(v as u64);
    }
    for &p in &r.final_preds {
        put(u64::from(p));
    }
    for (&a, &v) in &r.final_mem {
        put(a);
        put(v as u64);
    }
    h
}

// ---------------------------------------------------------------------------
// Second golden lane: the same job matrix with the non-blocking memory
// hierarchy on.
//
// The flat lane above pins the default model byte-for-byte; this lane pins
// `MemConfig::realistic_preset()` (I-MSHRs, next-line instruction
// prefetch, finite write buffer, limited data ports, store forwarding,
// stride prefetch) with per-case knob variation, so a timing change
// anywhere in the hierarchy path — MSHR allocation, fill ordering, port
// arbitration, write-buffer drains, wrong-path cancellation — moves a
// committed fingerprint. The hierarchy fingerprint hashes the FULL
// 13-cause accounting split plus the hierarchy-only counters the flat
// fingerprint deliberately excludes.
//
// To regenerate after an *intended* timing change:
//   cargo test --release --test golden_figures regenerate_hierarchy_job_goldens -- --ignored --nocapture

/// Hierarchy-on `SimResult` fingerprints, one per randomized job.
const RH_GOLDEN: [u64; RJ_CASES as usize] = [
    0xfa03_c0fa_8edf_e68c,
    0x3405_98db_2b39_8850,
    0xe05b_6f53_ce24_c64b,
    0xab13_a85c_f671_6ceb,
    0x0323_c44f_efd3_2790,
    0x28ae_65f9_b6ad_b5bd,
    0x41fa_e690_e817_41a3,
    0x22a3_0472_0494_dbf8,
    0x302b_843e_81eb_9a4e,
    0xbc6a_5430_69dc_2275,
    0x9d1a_d5c8_abca_bf3b,
    0x45c1_2d04_691e_8bec,
    0x539e_9edc_9767_227b,
    0x30a7_01e1_27e4_9de0,
    0xb4ff_3b1a_005f_391c,
    0xe87c_0bb4_cddc_acc4,
    0xabef_c0b2_b370_258c,
    0x2d73_fadc_6c63_a459,
    0x7514_01aa_7a88_2619,
    0xa321_cb34_62bb_1d52,
    0xaf58_f5c6_663d_e7b5,
    0x5841_6535_cb3e_a1ae,
    0xf6d3_5cb8_43a3_e664,
    0x4fdf_32ee_5ff3_51ed,
];

/// FNV-1a-64 over the flat fingerprint's serialization PLUS the full
/// 13-row cycle-accounting split and the hierarchy-only counters
/// (`mshr_full_stalls`, `writebuf_full_stalls`, `port_conflict_stalls`,
/// `wrong_path_fills`, `store_forwards`, `load_replays`) — everything the
/// non-blocking model can move.
fn fingerprint_hierarchy(r: &SimResult) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut put = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
    };
    let s = &r.stats;
    for v in [
        s.cycles,
        s.retired_uops,
        s.retired_guard_false,
        s.retired_select_uops,
        s.retired_cond_branches,
        s.flushes,
        s.retired_mispredicted,
        s.flushes_avoided,
        s.fetched_uops,
        s.fetch_idle_cycles,
        s.fetch_idle_imiss,
        s.fetch_idle_redirect,
        s.fetch_idle_queue_full,
        s.fetch_idle_blocked,
        s.dispatch_idle_cycles,
        s.retire_idle_cycles,
        s.squashed_uops,
        s.store_forwards,
        s.load_replays,
        s.mshr_full_stalls,
        s.writebuf_full_stalls,
        s.port_conflict_stalls,
        s.wrong_path_fills,
    ] {
        put(v);
    }
    for (_, v) in s.cycle_accounting.rows() {
        put(v);
    }
    for (&pc, c) in &s.hot_sites {
        put(u64::from(pc));
        put(c.flushes);
        put(c.flushes_avoided);
        put(c.guard_false_uops);
    }
    for c in [&s.icache, &s.l1d, &s.l2] {
        put(c.hits);
        put(c.misses);
        put(c.probes);
    }
    for &v in &r.final_regs {
        put(v as u64);
    }
    for &p in &r.final_preds {
        put(u64::from(p));
    }
    for (&a, &v) in &r.final_mem {
        put(a);
        put(v as u64);
    }
    h
}

/// The hierarchy-lane job: the flat lane's job with the memory model
/// swapped for the realistic preset, then per-case knob variation drawn
/// from an independent stream — every new knob gets exercised at several
/// values across the 24 cases.
fn random_hierarchy_job(case: u64) -> (usize, Option<BinaryVariant>, InputSet, MachineConfig) {
    let (bench, variant, input, mut m) = random_job(case);
    m.mem = wishbranch_mem::MemConfig::realistic_preset();
    let mut st = 0x43ac_4e5e_u64 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut pick = |n: u64| splitmix64(&mut st) % n;
    m.mem.write_buffer_entries = [0, 2, 4][pick(3) as usize];
    m.mem.data_ports = [0, 1, 2][pick(3) as usize];
    if pick(3) == 0 {
        m.mem.iprefetch = false;
    }
    m.mem.i_mshrs = [1, 4][pick(2) as usize];
    if pick(3) == 0 {
        m.mem.l1_mshrs = 2;
    }
    if pick(3) == 0 {
        m.mem.prefetch_entries = 0;
    }
    if pick(4) == 0 {
        m.mem.store_forwarding = false;
    }
    (bench, variant, input, m)
}

/// Runs one hierarchy-lane job through the full suite spine and
/// fingerprints the verified result.
fn run_hierarchy_job(case: u64) -> u64 {
    let (bench_idx, variant, input, machine) = random_hierarchy_job(case);
    let ec = ExperimentConfig::quick(RJ_SCALE);
    let benches = suite(RJ_SCALE);
    let bench = &benches[bench_idx];
    let bin = match variant {
        Some(v) => compile_variant(bench, v, &ec).expect("compile"),
        None => compile_adaptive_variant(bench, &[InputSet::A, InputSet::C], &ec)
            .expect("compile adaptive"),
    };
    let result = simulate(&bin.program, bench, input, &machine).expect("simulate + verify");
    fingerprint_hierarchy(&result)
}

/// Every hierarchy-lane job must reproduce its committed fingerprint
/// exactly — the non-blocking model's timing is pinned as tightly as the
/// flat model's.
#[test]
fn randomized_hierarchy_jobs_are_bit_identical_to_goldens() {
    for case in 0..RJ_CASES {
        let got = run_hierarchy_job(case);
        assert_eq!(
            got,
            RH_GOLDEN[case as usize],
            "case {case} ({:?}): hierarchy SimResult diverged from its golden",
            random_hierarchy_job(case)
        );
    }
}

/// Regeneration helper (ignored): prints the hierarchy golden array.
#[test]
#[ignore = "golden generator, run manually with --nocapture"]
fn regenerate_hierarchy_job_goldens() {
    println!("const RH_GOLDEN: [u64; RJ_CASES as usize] = [");
    for case in 0..RJ_CASES {
        println!("    {:#018x},", run_hierarchy_job(case));
    }
    println!("];");
}

/// One randomized job drawn from the splitmix64 stream: a benchmark, a
/// binary variant (including the adaptive extension), an input set, and a
/// machine configuration spanning every mechanism the simulator models.
fn random_job(case: u64) -> (usize, Option<BinaryVariant>, InputSet, MachineConfig) {
    let mut st = 0x5eed_c0de_u64 ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    let mut pick = |n: u64| splitmix64(&mut st) % n;

    let bench = pick(9) as usize; // the suite has nine benchmarks
    // None = the adaptive extension binary (compiled from several profiles).
    let variant = match pick(6) {
        0 => Some(BinaryVariant::NormalBranch),
        1 => Some(BinaryVariant::BaseDef),
        2 => Some(BinaryVariant::BaseMax),
        3 => Some(BinaryVariant::WishJumpJoin),
        4 => Some(BinaryVariant::WishJumpJoinLoop),
        _ => None,
    };
    let input = [InputSet::A, InputSet::B, InputSet::C][pick(3) as usize];

    let mut m = MachineConfig {
        pipeline_depth: [5, 10, 30][pick(3) as usize],
        rob_size: [32, 64, 128, 512][pick(4) as usize],
        fetch_width: [4, 8][pick(2) as usize],
        ..MachineConfig::default()
    };
    m.max_cond_branches_per_cycle = [2, 3][pick(2) as usize];
    if pick(2) == 0 {
        m.pred_mechanism = PredMechanism::SelectUop;
    }
    if pick(4) == 0 {
        m.wish_enabled = false;
    }
    match pick(5) {
        0 => m.oracles.perfect_confidence = true,
        1 => m.oracles.perfect_branch_prediction = true,
        2 => m.oracles.no_pred_dependencies = true,
        3 => {
            m.oracles.no_pred_dependencies = true;
            m.oracles.no_false_predicate_fetch = true;
        }
        _ => {}
    }
    if pick(4) == 0 {
        m.dhp_enabled = true;
    }
    if pick(4) == 0 && !m.dhp_enabled {
        m.predicate_prediction = true;
    }
    if pick(3) == 0 {
        m.wish_loop_predictor = Some(Default::default());
    }
    if pick(3) == 0 {
        m.mem.max_outstanding_misses = 2;
    }
    (bench, variant, input, m)
}

/// Runs one randomized job through the full suite spine (profile →
/// compile → simulate → verify) and fingerprints the verified result.
fn run_random_job(case: u64) -> u64 {
    let (bench_idx, variant, input, machine) = random_job(case);
    let ec = ExperimentConfig::quick(RJ_SCALE);
    let benches = suite(RJ_SCALE);
    let bench = &benches[bench_idx];
    let bin = match variant {
        Some(v) => compile_variant(bench, v, &ec).expect("compile"),
        None => compile_adaptive_variant(bench, &[InputSet::A, InputSet::C], &ec)
            .expect("compile adaptive"),
    };
    let result = simulate(&bin.program, bench, input, &machine).expect("simulate + verify");
    fingerprint(&result)
}

/// Exhaustive check: every randomized job must reproduce its pre-overhaul
/// fingerprint exactly (stats, cycle accounting, hot sites, final state).
#[test]
fn randomized_jobs_are_bit_identical_to_pre_overhaul_goldens() {
    for case in 0..RJ_CASES {
        let got = run_random_job(case);
        assert_eq!(
            got, RJ_GOLDEN[case as usize],
            "case {case} ({:?}): SimResult diverged from the pre-overhaul simulator",
            random_job(case)
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Property flavor of the same check: a randomly sampled job from the
    /// golden matrix stays byte-identical to its pre-overhaul fingerprint
    /// (and, being run twice across the two tests, doubles as a
    /// determinism check).
    #[test]
    fn sampled_random_job_matches_pre_overhaul_golden(case in 0u64..RJ_CASES) {
        prop_assert_eq!(run_random_job(case), RJ_GOLDEN[case as usize]);
    }
}

/// Regeneration helper (ignored): prints the golden array for pasting.
#[test]
#[ignore = "golden generator, run manually with --nocapture"]
fn regenerate_random_job_goldens() {
    println!("const RJ_GOLDEN: [u64; RJ_CASES as usize] = [");
    for case in 0..RJ_CASES {
        println!("    {:#018x},", run_random_job(case));
    }
    println!("];");
}
