//! Golden-figure regression: headline averages of Figs. 10 and 12 at a
//! reduced, fully deterministic scale.
//!
//! EXPERIMENTS.md records the paper-scale (WISHBRANCH_SCALE=4000) headline
//! numbers — Fig. 10 wish-jj AVGnomcf 0.918, Fig. 12 wish-jjl AVG 0.827,
//! BASE-DEF 0.892. Simulating at that scale is minutes of work, so this
//! test snapshots the same averages at scale 150 on the paper machine
//! (values measured from the engine, which is bit-identical to the serial
//! spine — see `engine_equivalence.rs`). The whole stack is deterministic,
//! so a drift beyond the stated tolerance means a real change to the
//! compiler, simulator, or workloads — rerun the paper-scale sweep and
//! update both this snapshot and EXPERIMENTS.md if the change is intended.

use wishbranch_core::{
    Experiment, ExperimentConfig, FigureData, Report, ReportData, SweepRunner,
};

const SCALE: i32 = 150;

/// Tolerance on each snapshot value. Generous enough to survive benign
/// heuristic retunes, tight enough to catch a broken mechanism (breaking
/// wish-loop conversion moves the Fig. 12 averages by > 0.02).
const TOL: f64 = 0.015;

fn avg_row<'a>(fig: &'a FigureData, which: &str, series: &str) -> f64 {
    let idx = fig
        .series
        .iter()
        .position(|s| s == series)
        .unwrap_or_else(|| panic!("series {series:?} missing from {:?}", fig.series));
    fig.rows
        .iter()
        .find(|r| r.name == which)
        .unwrap_or_else(|| panic!("{which} row missing"))
        .values[idx]
}

fn assert_close(label: &str, got: f64, want: f64) {
    assert!(
        (got - want).abs() <= TOL,
        "{label}: got {got:.6}, snapshot {want:.6} (tolerance ±{TOL})"
    );
}

/// Runs an experiment through the unified catalog API and unwraps the
/// figure payload — so the golden values below also pin the
/// `Experiment::run` → `Report` path, not just the raw figure functions.
fn run_figure(exp: Experiment, runner: &SweepRunner) -> (Report, FigureData) {
    let report = exp.run(runner);
    let ReportData::Figure(fig) = report.data.clone() else {
        panic!("{}: expected a figure payload", report.id)
    };
    (report, fig)
}

#[test]
fn figure_10_and_12_headline_averages_match_snapshot() {
    let ec = ExperimentConfig::paper(SCALE);
    let runner = SweepRunner::new(&ec);
    let (report10, fig10) = run_figure(Experiment::Fig10, &runner);
    let (_, fig12) = run_figure(Experiment::Fig12, &runner);

    // The report serializes the exact simulated values (six decimals).
    assert!(
        report10.to_json().contains(&format!(
            "{:.6}",
            avg_row(&fig10, "AVG", "BASE-DEF")
        )),
        "fig10 JSON must carry the snapshot value verbatim"
    );

    // Fig. 10 snapshot (scale 150).
    assert_close("fig10 BASE-DEF AVG", avg_row(&fig10, "AVG", "BASE-DEF"), 1.001474);
    assert_close(
        "fig10 wish-jj AVGnomcf",
        avg_row(&fig10, "AVGnomcf", "wish-jj (real-conf)"),
        0.982445,
    );
    assert_close(
        "fig10 wish-jj perf-conf AVG",
        avg_row(&fig10, "AVG", "wish-jj (perf-conf)"),
        0.974505,
    );

    // Fig. 12 snapshot (scale 150).
    assert_close(
        "fig12 wish-jjl AVG",
        avg_row(&fig12, "AVG", "wish-jjl (real-conf)"),
        0.943934,
    );
    assert_close(
        "fig12 wish-jjl AVGnomcf",
        avg_row(&fig12, "AVGnomcf", "wish-jjl (real-conf)"),
        0.917767,
    );

    // The paper's qualitative headline must hold at any scale: adding wish
    // loops beats both the predicated baseline and the jump/join binary.
    let wjjl = avg_row(&fig12, "AVGnomcf", "wish-jjl (real-conf)");
    assert!(
        wjjl < avg_row(&fig12, "AVGnomcf", "BASE-DEF"),
        "wish-jjl must beat BASE-DEF"
    );
    assert!(
        wjjl < avg_row(&fig12, "AVGnomcf", "wish-jj (real-conf)"),
        "wish loops must add benefit over jump/join alone"
    );
    assert!(wjjl < 1.0, "wish-jjl must beat the normal-branch binary");
}
