//! Cache-correctness properties of the sweep engine: a cache hit is
//! structurally identical to a fresh compile, and cache keys never alias
//! across distinct compile options or training inputs.

use proptest::prelude::*;
use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
use wishbranch_core::{profile_on, ExperimentConfig, SweepJob, SweepRunner, TrainSpec};
use wishbranch_workloads::{suite, InputSet};

fn options_strategy() -> impl Strategy<Value = CompileOptions> {
    (
        0usize..=20,           // wish_jump_threshold
        1usize..=60,           // wish_loop_body_max
        5u32..=60,             // mispredict_penalty (integer-valued f64)
        1u32..=6,              // est_ipc
        10usize..=400,         // max_predicated_side
        0u32..=10,             // input_dependence_threshold (percent)
    )
        .prop_map(|(n, l, penalty, ipc, side, dep)| CompileOptions {
            wish_jump_threshold: n,
            wish_loop_body_max: l,
            mispredict_penalty: f64::from(penalty),
            est_ipc: f64::from(ipc),
            max_predicated_side: side,
            input_dependence_threshold: f64::from(dep) / 100.0,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// For any compile options, the binary served from the cache on the
    /// second request is structurally identical to a fresh, cache-free
    /// compile with the same inputs.
    #[test]
    fn cache_hit_is_structurally_identical_to_fresh_compile(
        opts in options_strategy(),
        variant_idx in 0usize..BinaryVariant::ALL.len(),
    ) {
        let ec = ExperimentConfig::quick(20);
        let variant = BinaryVariant::ALL[variant_idx];
        let runner = SweepRunner::new(&ec);
        let job = SweepJob::standard(0, variant, InputSet::B, &ec).with_compile(opts.clone());

        let (first, first_hit) = runner.binary(&job).expect("compile");
        prop_assert!(!first_hit, "first request must be a miss");
        let (second, second_hit) = runner.binary(&job).expect("compile");
        prop_assert!(second_hit, "second request must be a hit");

        let bench = &suite(ec.scale)[0];
        let profile = profile_on(bench, ec.train_input).expect("profile");
        let fresh = compile(&bench.module, &profile, variant, &opts);
        prop_assert_eq!(&*second, &fresh, "cached binary differs from fresh compile");
        prop_assert_eq!(&*first, &fresh);
    }

    /// Distinct training inputs never share a cache entry, even when every
    /// other part of the job is identical.
    #[test]
    fn distinct_train_inputs_never_alias(
        variant_idx in 0usize..BinaryVariant::ALL.len(),
    ) {
        let ec = ExperimentConfig::quick(20);
        let variant = BinaryVariant::ALL[variant_idx];
        let runner = SweepRunner::new(&ec);
        let base = SweepJob::standard(1, variant, InputSet::B, &ec);
        for input in InputSet::ALL {
            let _ = runner.binary(&base.clone().with_train(TrainSpec::Single(input)));
        }
        let summary = runner.summary();
        prop_assert_eq!(summary.compile_misses, 3, "three train inputs, three compiles");
        prop_assert_eq!(summary.compile_hits, 0);
    }
}

#[test]
fn single_and_multi_train_specs_never_alias() {
    let ec = ExperimentConfig::quick(20);
    let runner = SweepRunner::new(&ec);
    let job = SweepJob::standard(0, BinaryVariant::WishAdaptive, InputSet::B, &ec);
    let _ = runner.binary(&job.clone().with_train(TrainSpec::Single(InputSet::A)));
    let _ = runner.binary(&job.clone().with_train(TrainSpec::Multi(vec![InputSet::A])));
    let _ = runner
        .binary(&job.clone().with_train(TrainSpec::Multi(vec![InputSet::A, InputSet::C])));
    assert_eq!(runner.summary().compile_misses, 3, "all three keys are distinct");
}

#[test]
fn any_option_difference_is_a_distinct_key() {
    let ec = ExperimentConfig::quick(20);
    let runner = SweepRunner::new(&ec);
    let base = SweepJob::standard(0, BinaryVariant::WishJumpJoin, InputSet::B, &ec);
    let mut seen = 0;
    for tweak in 0..6 {
        let mut opts = ec.compile.clone();
        match tweak {
            0 => opts.wish_jump_threshold += 1,
            1 => opts.wish_loop_body_max += 1,
            2 => opts.mispredict_penalty += 0.5,
            3 => opts.est_ipc += 0.25,
            4 => opts.max_predicated_side += 1,
            _ => opts.input_dependence_threshold += 0.001,
        }
        let _ = runner.binary(&base.clone().with_compile(opts));
        seen += 1;
    }
    let _ = runner.binary(&base); // defaults, a seventh distinct key
    assert_eq!(runner.summary().compile_misses, seen + 1);
}
