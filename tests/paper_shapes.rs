//! Cross-crate integration tests: the paper's qualitative results must
//! hold end-to-end (workloads → compiler → simulator → figures), at a
//! scale small enough for debug builds.

use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{
    run_binary, Experiment, ExperimentConfig, ReportData, SweepRunner,
};
use wishbranch_workloads::{mcf, suite, InputSet};

fn quick() -> ExperimentConfig {
    // Paper machine at reduced scale: big enough for the confidence
    // estimator to warm up and for 30-cycle flushes to matter, small enough
    // for debug-build CI.
    ExperimentConfig::paper(800)
}

fn quick_runner() -> SweepRunner {
    SweepRunner::new(&quick())
}

/// Runs a catalog experiment and unwraps its figure payload — the typed
/// route every external caller takes now that the free functions are
/// deprecated.
fn figure_of(exp: Experiment, runner: &SweepRunner) -> wishbranch_core::FigureData {
    match exp.run(runner).data {
        ReportData::Figure(fig) => fig,
        other => panic!("{exp:?} did not return a figure: {other:?}"),
    }
}

fn row<'a>(fig: &'a wishbranch_core::FigureData, name: &str) -> &'a [f64] {
    &fig
        .rows
        .iter()
        .find(|r| r.name == name)
        .unwrap_or_else(|| panic!("row {name} missing"))
        .values
}

#[test]
fn figure2_oracle_ordering_holds() {
    let fig = figure_of(Experiment::Fig2, &quick_runner());
    // Removing overhead can only help: BASE-MAX ≥ NO-DEPEND ≥ NO-DEPEND+NO-FETCH.
    for r in &fig.rows {
        let (base, no_dep, no_dep_no_fetch) = (r.values[0], r.values[1], r.values[2]);
        assert!(
            no_dep <= base * 1.10,
            "{}: NO-DEPEND must not exceed BASE-MAX materially ({no_dep:.3} vs {base:.3})",
            r.name
        );
        // Per-benchmark, NO-FETCH can wiggle a few percent above NO-DEPEND
        // through second-order fetch-grouping effects (removing NOPs
        // repacks fetch groups around taken branches); the ordering is
        // guaranteed in aggregate below.
        assert!(
            no_dep_no_fetch <= no_dep * 1.10,
            "{}: NO-FETCH must not exceed NO-DEPEND materially ({no_dep_no_fetch:.3} vs {no_dep:.3})",
            r.name
        );
    }
    // Perfect branch prediction beats everything on average (the paper's
    // 37.4% headroom argument).
    let avg = row(&fig, "AVG");
    assert!(avg[1] <= avg[0], "AVG: NO-DEPEND ≤ BASE-MAX: {avg:?}");
    assert!(avg[2] <= avg[1], "AVG: NO-FETCH ≤ NO-DEPEND: {avg:?}");
    assert!(avg[3] < 1.0, "PERFECT-CBP must beat normal branches: {avg:?}");
    assert!(avg[3] < avg[2], "PERFECT-CBP must beat ideal predication: {avg:?}");
}

#[test]
fn figure12_wish_branches_win_on_average() {
    let fig = figure_of(Experiment::Fig12, &quick_runner());
    let avg = row(&fig, "AVG");
    let series: Vec<&str> = fig.series.iter().map(String::as_str).collect();
    assert_eq!(
        series,
        [
            "BASE-DEF",
            "BASE-MAX",
            "wish-jj (real-conf)",
            "wish-jjl (real-conf)",
            "wish-jjl (perf-conf)"
        ]
    );
    let (base_def, base_max, wjj, wjjl, wjjl_perf) =
        (avg[0], avg[1], avg[2], avg[3], avg[4]);
    // The headline claims, directionally.
    assert!(wjjl < 1.0, "wish-jjl must beat normal branches: {wjjl:.3}");
    assert!(
        wjjl < base_def.min(base_max),
        "wish-jjl must beat the best predicated baseline: {wjjl:.3} vs {base_def:.3}/{base_max:.3}"
    );
    assert!(
        wjjl <= wjj + 0.02,
        "adding wish loops must not hurt: {wjjl:.3} vs {wjj:.3}"
    );
    assert!(
        wjjl_perf <= wjjl + 0.01,
        "perfect confidence must not hurt: {wjjl_perf:.3} vs {wjjl:.3}"
    );
}

#[test]
fn figure14_mem_latency_wish_advantage_grows_with_latency() {
    let rows = match Experiment::Fig14Mem.run(&quick_runner()).data {
        ReportData::ParamSweep { rows, .. } => rows,
        other => panic!("Fig14Mem did not return a sweep: {other:?}"),
    };
    assert_eq!(rows.len(), 4, "four latency points");
    for r in &rows {
        let series: Vec<&str> = r.series.iter().map(String::as_str).collect();
        assert_eq!(series, ["BASE-MAX", "wish-jjl (real-conf)", "PERFECT-CBP"]);
        // Perfect branch prediction is the ceiling at every latency.
        assert!(
            r.avg[2] < r.avg[0].min(r.avg[1]),
            "PERFECT-CBP must beat both contenders at latency {}: {:?}",
            r.param,
            r.avg
        );
    }
    // The experiment's claim: wish branches' advantage over predication
    // (predicated code serializes load-dependent predicates that branches
    // speculate past, and its guard-false work competes for MSHRs) widens
    // as memory latency grows — strictly, on the mcf-free mean the paper
    // prefers, and end-to-end on the full mean.
    let adv: Vec<f64> = rows.iter().map(|r| r.avg_nomcf[0] - r.avg_nomcf[1]).collect();
    for pair in adv.windows(2) {
        assert!(
            pair[1] > pair[0],
            "wish advantage over BASE-MAX must grow with latency: {adv:?}"
        );
    }
    let adv_full: Vec<f64> = rows.iter().map(|r| r.avg[0] - r.avg[1]).collect();
    assert!(
        adv_full.last() > adv_full.first(),
        "advantage must grow across the sweep on the full mean too: {adv_full:?}"
    );
    assert!(
        *adv.last().unwrap() > 0.0,
        "at the longest latency wish branches must beat predication outright: {adv:?}"
    );
}

#[test]
fn mcf_predication_pathology_and_wish_rescue() {
    let ec = quick();
    let bench = mcf(150);
    let normal = run_binary(&bench, BinaryVariant::NormalBranch, InputSet::B, &ec).expect("run");
    let max = run_binary(&bench, BinaryVariant::BaseMax, InputSet::B, &ec).expect("run");
    let wjjl =
        run_binary(&bench, BinaryVariant::WishJumpJoinLoop, InputSet::B, &ec).expect("run");
    let n = normal.sim.stats.cycles as f64;
    assert!(
        max.sim.stats.cycles as f64 > n * 1.2,
        "BASE-MAX must hurt mcf badly: {:.3}",
        max.sim.stats.cycles as f64 / n
    );
    assert!(
        (wjjl.sim.stats.cycles as f64) < max.sim.stats.cycles as f64 * 0.8,
        "wish branches must rescue mcf: {:.3} vs {:.3}",
        wjjl.sim.stats.cycles as f64 / n,
        max.sim.stats.cycles as f64 / n
    );
}

#[test]
fn table4_is_consistent() {
    let rows = match Experiment::Tab4.run(&quick_runner()).data {
        ReportData::Benchmarks(rows) => rows,
        other => panic!("Tab4 did not return benchmark rows: {other:?}"),
    };
    assert_eq!(rows.len(), 9);
    for r in &rows {
        assert!(r.dynamic_uops > 1000, "{}: too little work", r.name);
        assert!(r.static_branches > 0);
        assert!(r.dynamic_branches > 0);
        assert!(r.upc > 0.0 && r.upc <= 8.0, "{}: µPC out of range", r.name);
        assert!(r.static_wish > 0, "{}: wish binary must contain wish branches", r.name);
        assert!((0.0..=100.0).contains(&r.static_wish_loop_pct));
        assert!((0.0..=100.0).contains(&r.dynamic_wish_loop_pct));
        assert!(r.dynamic_wish > 0, "{}: wish branches must retire", r.name);
    }
    // bzip2's dynamic wish-branch mix must be loop-dominated (Table 4: 90%).
    let bzip2 = rows.iter().find(|r| r.name == "bzip2").unwrap();
    assert!(
        bzip2.dynamic_wish_loop_pct > 50.0,
        "bzip2 must be wish-loop dominated: {:.0}%",
        bzip2.dynamic_wish_loop_pct
    );
}

#[test]
fn table5_average_positive_vs_normal() {
    let rows = match Experiment::Tab5.run(&quick_runner()).data {
        ReportData::BestBinary(rows) => rows,
        other => panic!("Tab5 did not return best-binary rows: {other:?}"),
    };
    let avg = rows.iter().find(|r| r.name == "AVG").unwrap();
    assert!(
        avg.vs_normal_pct > 0.0,
        "wish-jjl must reduce execution time on average: {:.1}%",
        avg.vs_normal_pct
    );
    for r in &rows {
        assert!(r.vs_best_pct <= r.vs_best_predicated_pct + 1e-9);
        assert!(r.vs_best_pct <= r.vs_normal_pct + 1e-9);
    }
}

#[test]
fn every_benchmark_every_input_architecturally_verified() {
    // `simulate` reports architectural divergence as a typed error, so a
    // clean `expect` across the sweep is itself the assertion.
    let ec = ExperimentConfig::quick(60);
    for bench in suite(60) {
        for input in InputSet::ALL {
            for variant in [BinaryVariant::NormalBranch, BinaryVariant::WishJumpJoinLoop] {
                let out = run_binary(&bench, variant, input, &ec).expect("verified run");
                assert!(out.sim.stats.cycles > 0);
            }
        }
    }
}

#[test]
fn adaptive_extension_never_loses_to_wjl_on_average() {
    use wishbranch_core::{compile_adaptive_variant, compile_variant, simulate};
    let ec = quick();
    let mut wjl_sum = 0.0;
    let mut adaptive_sum = 0.0;
    let mut n = 0.0;
    for bench in suite(800) {
        let normal =
            compile_variant(&bench, BinaryVariant::NormalBranch, &ec).expect("compile");
        let wjl =
            compile_variant(&bench, BinaryVariant::WishJumpJoinLoop, &ec).expect("compile");
        let adaptive = compile_adaptive_variant(&bench, &[InputSet::A, InputSet::C], &ec)
            .expect("compile");
        for input in InputSet::ALL {
            let cycles = |program| {
                simulate(program, &bench, input, &ec.machine).expect("simulate").stats.cycles as f64
            };
            let base = cycles(&normal.program);
            wjl_sum += cycles(&wjl.program) / base;
            adaptive_sum += cycles(&adaptive.program) / base;
            n += 1.0;
        }
    }
    let (wjl_avg, adaptive_avg) = (wjl_sum / n, adaptive_sum / n);
    assert!(
        adaptive_avg <= wjl_avg + 0.005,
        "the §3.6 extension must not lose on average: {adaptive_avg:.3} vs {wjl_avg:.3}"
    );
}
