//! Batched-vs-scalar bit-equivalence: every lane of a
//! [`BatchSimulator`] must produce a `SimResult` **equal** to the scalar
//! [`Simulator`] run with the same program, machine configuration and
//! input — stats, cycle accounting, hot sites, cache counters and final
//! architectural state. The batch engine changes only the *layout* of
//! in-flight state (slot arena, slim ROB, shared decode tables); any
//! observable divergence is a bug.
//!
//! The job matrix deliberately mixes benchmarks, binary variants, inputs
//! and machine configs — including hierarchy-on (`realistic`) and
//! hierarchy-off `MemConfig`s inside one batch, which the lane engine must
//! handle directly (the `SweepRunner` planner additionally splits such
//! groups, but the engine itself cannot require it).

use proptest::prelude::*;
use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{compile_variant, ExperimentConfig};
use wishbranch_isa::Program;
use wishbranch_uarch::{
    BatchLaneSpec, BatchSimulator, MachineConfig, PredMechanism, SimResult, Simulator,
};
use wishbranch_workloads::{suite, InputSet};

const SCALE: i32 = 40;

/// splitmix64: deterministic stream for the job matrix.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One lane drawn from the stream: bench index, variant, input, machine.
fn random_lane(st: &mut u64) -> (usize, BinaryVariant, InputSet, MachineConfig) {
    let mut pick = |n: u64| splitmix64(st) % n;
    let bench = pick(9) as usize;
    let variant = [
        BinaryVariant::NormalBranch,
        BinaryVariant::BaseDef,
        BinaryVariant::BaseMax,
        BinaryVariant::WishJumpJoin,
        BinaryVariant::WishJumpJoinLoop,
    ][pick(5) as usize];
    let input = [InputSet::A, InputSet::B, InputSet::C][pick(3) as usize];
    let mut m = MachineConfig {
        pipeline_depth: [5, 10, 30][pick(3) as usize],
        rob_size: [32, 128, 512][pick(3) as usize],
        ..MachineConfig::default()
    };
    if pick(2) == 0 {
        m.pred_mechanism = PredMechanism::SelectUop;
    }
    match pick(5) {
        0 => m.oracles.perfect_confidence = true,
        1 => m.oracles.perfect_branch_prediction = true,
        2 => m.oracles.no_pred_dependencies = true,
        3 => {
            m.oracles.no_pred_dependencies = true;
            m.oracles.no_false_predicate_fetch = true;
        }
        _ => {}
    }
    if pick(4) == 0 {
        m.dhp_enabled = true;
    }
    if pick(4) == 0 && !m.dhp_enabled {
        m.predicate_prediction = true;
    }
    if pick(3) == 0 {
        m.wish_loop_predictor = Some(Default::default());
    }
    // Mix memory models inside one batch: flat, flat+finite-MSHR queue,
    // and the full non-blocking hierarchy with its I-side, write-buffer
    // and port knobs rolled independently.
    match pick(3) {
        0 => {}
        1 => m.mem.max_outstanding_misses = 2,
        _ => {
            m.mem.realistic = true;
            if pick(2) == 0 {
                m.mem.write_buffer_entries = [2, 4][pick(2) as usize];
            }
            if pick(2) == 0 {
                m.mem.data_ports = [1, 2][pick(2) as usize];
            }
            if pick(2) == 0 {
                m.mem.iprefetch = false;
            }
            if pick(3) == 0 {
                m.mem.i_mshrs = 1;
            }
        }
    }
    (bench, variant, input, m)
}

/// Scalar reference run for one lane spec.
fn scalar_run(program: &Program, cfg: &MachineConfig, preload: &[(u64, i64)]) -> SimResult {
    let mut sim = Simulator::new(program, cfg.clone());
    for &(a, v) in preload {
        sim.preload_mem(a, v);
    }
    sim.run().expect("scalar lane halts")
}

/// Builds a batch of `lanes` lanes from the seeded stream and asserts
/// every lane's result equals its scalar reference.
fn check_batch(seed: u64, lanes: usize) {
    let ec = ExperimentConfig::quick(SCALE);
    let benches = suite(SCALE);
    let mut st = 0xba7c_4_u64 ^ seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);

    let mut jobs = Vec::with_capacity(lanes);
    for _ in 0..lanes {
        jobs.push(random_lane(&mut st));
    }
    // Compile each distinct (bench, variant) once: lanes sharing a program
    // must share one `&Program` so the batch decode cache can unify them.
    let mut bins: Vec<((usize, BinaryVariant), Program)> = Vec::new();
    for &(b, v, _, _) in &jobs {
        if !bins.iter().any(|(k, _)| *k == (b, v)) {
            let bin = compile_variant(&benches[b], v, &ec).expect("compile");
            bins.push(((b, v), bin.program));
        }
    }
    let lookup = |b: usize, v: BinaryVariant| -> &Program {
        &bins.iter().find(|(k, _)| *k == (b, v)).expect("compiled").1
    };

    let specs: Vec<BatchLaneSpec> = jobs
        .iter()
        .map(|&(b, v, input, ref cfg)| BatchLaneSpec {
            program: lookup(b, v),
            cfg: cfg.clone(),
            preload_mem: (benches[b].input_fn)(input),
            retire_log: false,
        })
        .collect();
    let mut batch = BatchSimulator::new(&specs);
    let results = batch.run();
    assert_eq!(results.len(), lanes);

    for (i, (&(b, v, input, ref cfg), got)) in jobs.iter().zip(&results).enumerate() {
        let preload = (benches[b].input_fn)(input);
        let want = scalar_run(lookup(b, v), cfg, &preload);
        let got = got.as_ref().unwrap_or_else(|e| {
            panic!("lane {i} ({:?} {v:?} {input}): batch lane failed: {e}", benches[b].name)
        });
        assert_eq!(
            *got, want,
            "lane {i} ({:?} {v:?} {input} cfg {cfg:?}): batched result diverged from scalar",
            benches[b].name
        );
    }
}

/// Exhaustive sweep over seeds × batch sizes (covers size-1 batches, odd
/// sizes, and mixed-model compositions).
#[test]
fn batched_lanes_are_bit_identical_to_scalar() {
    for (seed, lanes) in [(0, 1), (1, 2), (2, 3), (3, 5), (4, 8)] {
        check_batch(seed, lanes);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Property flavor: random seed, random batch size.
    #[test]
    fn sampled_batch_matches_scalar(seed in 0u64..1000, lanes in 1usize..9) {
        check_batch(seed, lanes);
    }
}

/// Focused I-miss equivalence: a code footprint spanning many cold
/// I-cache lines, simulated under every I-side hierarchy configuration
/// (non-blocking fetch, prefetch off, a starved 1-entry I-MSHR file, the
/// full realistic preset) in one batch. Each lane must equal its scalar
/// reference — including the `imiss_pending` accounting rows the
/// fast-forward path bulk-applies — and the hierarchy lanes must actually
/// exercise non-blocking I-fill stalls.
#[test]
fn imiss_heavy_lanes_are_bit_identical_to_scalar() {
    use wishbranch_isa::{AluOp, CmpOp, Gpr, Insn, Operand, PredReg, ProgramBuilder};
    let r = Gpr::new;
    // Two passes over 2 KB of straight-line code: pass one cold-misses
    // every line (with a mispredictable exit branch at the bottom), pass
    // two hits — both models' I-paths get exercised, warm and cold.
    let mut b = ProgramBuilder::new();
    let top = b.label("top");
    let done = b.label("done");
    b.push(Insn::mov_imm(r(1), 0));
    b.bind(top);
    for _ in 0..512 {
        b.push(Insn::alu(AluOp::Add, r(2), r(2), Operand::imm(1)));
    }
    b.push(Insn::alu(AluOp::Add, r(1), r(1), Operand::imm(1)));
    b.push(Insn::cmp(CmpOp::Eq, PredReg::new(1), r(1), Operand::imm(2)));
    b.push_cond_branch(PredReg::new(1), true, done, None);
    b.push_branch_to(Insn::branch(wishbranch_isa::BranchKind::Uncond, 0), top);
    b.bind(done);
    b.push(Insn::halt());
    let program = b.build();

    let mut cfgs = Vec::new();
    let mut m = MachineConfig::default();
    m.mem.realistic = true;
    cfgs.push(("nonblocking", m));
    let mut m = MachineConfig::default();
    m.mem.realistic = true;
    m.mem.iprefetch = false;
    cfgs.push(("no-iprefetch", m));
    let mut m = MachineConfig::default();
    m.mem.realistic = true;
    m.mem.i_mshrs = 1;
    cfgs.push(("tight-imshr", m));
    let mut m = MachineConfig::default();
    m.mem = wishbranch_mem::MemConfig::realistic_preset();
    cfgs.push(("realistic-preset", m));
    cfgs.push(("flat", MachineConfig::default()));

    let specs: Vec<BatchLaneSpec> = cfgs
        .iter()
        .map(|(_, cfg)| BatchLaneSpec {
            program: &program,
            cfg: cfg.clone(),
            preload_mem: Vec::new(),
            retire_log: false,
        })
        .collect();
    let mut batch = BatchSimulator::new(&specs);
    let results = batch.run();
    for ((name, cfg), got) in cfgs.iter().zip(&results) {
        let want = scalar_run(&program, cfg, &[]);
        if cfg.mem.realistic {
            assert!(
                want.stats.cycle_accounting.imiss_pending > 0,
                "{name}: the footprint must produce non-blocking I-fill stalls: {:?}",
                want.stats.cycle_accounting
            );
        } else {
            assert_eq!(want.stats.cycle_accounting.imiss_pending, 0, "{name}");
        }
        assert_eq!(
            got.as_ref().expect("lane halts"),
            &want,
            "{name}: batched result diverged from scalar"
        );
    }
}

/// A straggler lane (100× the work of its batchmates) must neither
/// perturb the other lanes' results nor serialize their completion path:
/// short lanes leave the active set while the straggler keeps running.
#[test]
fn straggler_lane_stays_bit_identical() {
    // The trip count is baked into the program text, so the straggler is
    // the same benchmark compiled at 100× the scale — a second program in
    // the same batch (lanes need not share one).
    let ec_short = ExperimentConfig::quick(SCALE);
    let ec_long = ExperimentConfig::quick(SCALE * 100);
    let benches_short = suite(SCALE);
    let benches_long = suite(SCALE * 100);
    let bench = 0;
    let bin = compile_variant(&benches_short[bench], BinaryVariant::WishJumpJoin, &ec_short)
        .expect("compile");
    let bin_long = compile_variant(&benches_long[bench], BinaryVariant::WishJumpJoin, &ec_long)
        .expect("compile long");
    let cfg = MachineConfig::default();

    let short_in = (benches_short[bench].input_fn)(InputSet::A);
    let long_in = (benches_long[bench].input_fn)(InputSet::A);
    let mut specs = Vec::new();
    for (program, preload) in [
        (&bin.program, &short_in),
        (&bin_long.program, &long_in),
        (&bin.program, &short_in),
        (&bin.program, &short_in),
    ] {
        specs.push(BatchLaneSpec {
            program,
            cfg: cfg.clone(),
            preload_mem: preload.clone(),
            retire_log: false,
        });
    }
    let mut batch = BatchSimulator::new(&specs);
    let results = batch.run();

    let want_short = scalar_run(&bin.program, &cfg, &short_in);
    let want_long = scalar_run(&bin_long.program, &cfg, &long_in);
    assert!(
        want_long.stats.cycles >= want_short.stats.cycles * 20,
        "straggler must dominate: {} vs {}",
        want_long.stats.cycles,
        want_short.stats.cycles
    );
    for (i, want) in [&want_short, &want_long, &want_short, &want_short]
        .into_iter()
        .enumerate()
    {
        assert_eq!(
            results[i].as_ref().expect("lane halts"),
            want,
            "lane {i} diverged"
        );
    }
}

/// Per-lane fault isolation at the engine level: a lane that exhausts its
/// cycle budget errors alone; its batchmates still produce exact results.
#[test]
fn faulting_lane_gaps_only_its_own_cell() {
    let ec = ExperimentConfig::quick(SCALE);
    let benches = suite(SCALE);
    let bin = compile_variant(&benches[0], BinaryVariant::BaseDef, &ec).expect("compile");
    let good_cfg = MachineConfig::default();
    let starved_cfg = MachineConfig::default().with_max_cycles(8);
    let preload = (benches[0].input_fn)(InputSet::B);

    let specs: Vec<BatchLaneSpec> = [&good_cfg, &starved_cfg, &good_cfg]
        .into_iter()
        .map(|cfg| BatchLaneSpec {
            program: &bin.program,
            cfg: cfg.clone(),
            preload_mem: preload.clone(),
            retire_log: false,
        })
        .collect();
    let mut batch = BatchSimulator::new(&specs);
    let results = batch.run();

    let want = scalar_run(&bin.program, &good_cfg, &preload);
    assert_eq!(results[0].as_ref().expect("lane 0 halts"), &want);
    assert!(results[1].is_err(), "starved lane must report its limit");
    assert_eq!(results[2].as_ref().expect("lane 2 halts"), &want);
}

/// The batched retire log (lockstep-oracle food) must equal the scalar
/// engine's record for record.
#[test]
fn batched_retire_log_matches_scalar() {
    let ec = ExperimentConfig::quick(SCALE);
    let benches = suite(SCALE);
    let bin =
        compile_variant(&benches[2], BinaryVariant::WishJumpJoinLoop, &ec).expect("compile");
    let cfg = MachineConfig::default();
    let preload = (benches[2].input_fn)(InputSet::C);

    let specs = vec![
        BatchLaneSpec {
            program: &bin.program,
            cfg: cfg.clone(),
            preload_mem: preload.clone(),
            retire_log: true,
        },
        BatchLaneSpec {
            program: &bin.program,
            cfg: cfg.clone(),
            preload_mem: preload.clone(),
            retire_log: false,
        },
    ];
    let mut batch = BatchSimulator::new(&specs);
    let results = batch.run();
    let batched_log = batch.take_retire_log(0);

    let mut scalar = Simulator::new(&bin.program, cfg.clone());
    for &(a, v) in &preload {
        scalar.preload_mem(a, v);
    }
    scalar.enable_retire_log();
    let want = scalar.run().expect("halts");
    let scalar_log = scalar.take_retire_log();

    assert_eq!(results[0].as_ref().expect("halts"), &want);
    assert_eq!(batched_log.len(), scalar_log.len(), "retire stream length");
    for (i, (g, w)) in batched_log.iter().zip(&scalar_log).enumerate() {
        assert_eq!(g, w, "retire record {i} diverged");
    }
    assert!(
        batch.take_retire_log(1).is_empty(),
        "lanes that didn't ask for a log must not pay for one"
    );
}

/// Raw engine throughput probe (ignored; run in release):
/// `cargo test --release --test batch_equiv raw_speedup -- --ignored --nocapture`
/// Replays the fig10 job matrix (9 benches × 5 variants) scalar and
/// batched-per-bench and prints the µops/s ratio.
/// Process CPU seconds (utime + stime) from /proc/self/stat — immune to
/// host steal time, which dwarfs the effect being measured on shared VMs.
fn cpu_seconds() -> f64 {
    let stat = std::fs::read_to_string("/proc/self/stat").expect("linux procfs");
    // utime/stime are fields 14/15 (1-indexed); the comm field may contain
    // spaces but is parenthesized, so split after the last closing paren.
    let rest = stat.rsplit_once(')').map_or(stat.as_str(), |(_, r)| r);
    let mut it = rest.split_ascii_whitespace();
    let utime: f64 = it.nth(11).expect("utime").parse().expect("number");
    let stime: f64 = it.next().expect("stime").parse().expect("number");
    (utime + stime) / 100.0
}

#[test]
#[ignore = "perf probe, run manually in release"]
fn raw_speedup_probe() {
    use std::time::Instant;
    let scale = std::env::var("PROBE_SCALE").ok().and_then(|s| s.parse().ok()).unwrap_or(1000);
    let ec = ExperimentConfig::paper(scale);
    let benches = suite(scale);
    // fig10 composition: per bench, NormalBranch + BASE-DEF + BASE-MAX +
    // wish-jj under real and perfect confidence.
    let variants = [
        (BinaryVariant::NormalBranch, false),
        (BinaryVariant::BaseDef, false),
        (BinaryVariant::BaseMax, false),
        (BinaryVariant::WishJumpJoin, false),
        (BinaryVariant::WishJumpJoin, true),
    ];
    let mut groups = Vec::new();
    for b in &benches {
        let mut lanes = Vec::new();
        for &(v, perf_conf) in &variants {
            let bin = compile_variant(b, v, &ec).expect("compile");
            let mut m = ec.machine.clone();
            m.oracles.perfect_confidence = perf_conf;
            lanes.push((bin.program, m, (b.input_fn)(ec.train_input)));
        }
        groups.push(lanes);
    }

    let t0 = Instant::now();
    let c0 = cpu_seconds();
    let mut scalar_uops = 0u64;
    for lanes in &groups {
        for (p, m, preload) in lanes {
            let r = scalar_run(p, m, preload);
            scalar_uops += r.stats.retired_uops;
        }
    }
    let scalar_cpu = cpu_seconds() - c0;
    let scalar_wall = t0.elapsed().as_secs_f64();

    let t1 = Instant::now();
    let c1 = cpu_seconds();
    let mut batch_uops = 0u64;
    for lanes in &groups {
        let specs: Vec<BatchLaneSpec> = lanes
            .iter()
            .map(|(p, m, preload)| BatchLaneSpec {
                program: p,
                cfg: m.clone(),
                preload_mem: preload.clone(),
                retire_log: false,
            })
            .collect();
        let mut batch = BatchSimulator::new(&specs);
        for r in batch.run() {
            batch_uops += r.expect("halts").stats.retired_uops;
        }
    }
    let batch_cpu = cpu_seconds() - c1;
    let batch_wall = t1.elapsed().as_secs_f64();
    assert_eq!(scalar_uops, batch_uops, "same work both ways");
    let s = scalar_uops as f64 / scalar_wall;
    let b = batch_uops as f64 / batch_wall;
    println!(
        "scalar {s:.0} uops/s ({scalar_wall:.2}s) | batched {b:.0} uops/s ({batch_wall:.2}s) | ratio {:.2}x",
        b / s
    );
    println!(
        "cpu-time: scalar {scalar_cpu:.2}s | batched {batch_cpu:.2}s | ratio {:.2}x",
        scalar_cpu / batch_cpu
    );
}
