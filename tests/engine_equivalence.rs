//! The sweep engine's determinism contract: results from the parallel
//! worker pool are bit-identical to the serial profile→compile→simulate
//! spine, in submission order, regardless of worker count or job order.

use proptest::prelude::*;
use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{run_binary, Experiment, ExperimentConfig, ReportData, SweepJob, SweepRunner};
use wishbranch_workloads::{suite, InputSet};

/// The reduced sweep the equivalence tests run: two benchmarks (the first
/// and last of the suite — a loop-light and a loop-heavy workload) × every
/// Table 3 variant × all three input sets.
fn reduced_jobs(ec: &ExperimentConfig, nbench: usize) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    for b in [0, nbench - 1] {
        for variant in BinaryVariant::ALL {
            for input in InputSet::ALL {
                jobs.push(SweepJob::standard(b, variant, input, ec));
            }
        }
    }
    jobs
}

#[test]
fn parallel_results_are_bit_identical_to_serial() {
    let ec = ExperimentConfig::quick(40);
    let benches = suite(ec.scale);
    let jobs = reduced_jobs(&ec, benches.len());

    let parallel = SweepRunner::with_workers(&ec, 4)
        .run(jobs.clone())
        .expect("fault-free parallel sweep");
    let serial = SweepRunner::with_workers(&ec, 1)
        .run(jobs.clone())
        .expect("fault-free serial sweep");
    assert_eq!(parallel.len(), serial.len());

    for (i, (p, job)) in parallel.iter().zip(&jobs).enumerate() {
        // Against the 1-worker engine: the whole SimResult, bit for bit.
        let s = &serial[i];
        assert_eq!(
            p.outcome.sim, s.outcome.sim,
            "job {i}: parallel and serial SimResult diverge"
        );
        assert_eq!(p.outcome.report, s.outcome.report, "job {i}: report diverges");

        // Against the original cache-free serial spine: stats and final
        // memory image.
        let reference =
            run_binary(&benches[job.bench], job.variant, job.input, &ec).expect("serial spine");
        assert_eq!(
            p.outcome.sim.stats, reference.sim.stats,
            "job {i}: engine stats diverge from the uncached serial spine"
        );
        assert_eq!(
            p.outcome.sim.final_mem, reference.sim.final_mem,
            "job {i}: engine final memory diverges from the uncached serial spine"
        );
    }
}

/// How much real concurrency this machine gives 4 spinning threads.
/// Containers often report `available_parallelism() == 1` while still
/// scheduling threads on several cores (or the inverse), so the speedup
/// assertion calibrates against actual behavior instead of the advertised
/// core count.
fn measured_parallelism() -> f64 {
    use std::time::Instant;
    fn spin(n: u64) -> u64 {
        let mut x = 1u64;
        for i in 0..n {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
        }
        x
    }
    const N: u64 = 40_000_000;
    std::hint::black_box(spin(N)); // warmup
    let t0 = Instant::now();
    std::hint::black_box(spin(N));
    let serial = t0.elapsed();
    let t0 = Instant::now();
    std::thread::scope(|s| {
        for _ in 0..4 {
            s.spawn(|| std::hint::black_box(spin(N)));
        }
    });
    let par = t0.elapsed();
    4.0 * serial.as_secs_f64() / par.as_secs_f64()
}

#[test]
fn quick_scale_figure_sweep_parallel_speedup_and_cache_hits() {
    let ec = ExperimentConfig::quick(60);
    let runner = SweepRunner::with_workers(&ec, 4);
    let fig = match Experiment::Fig12.run(&runner).data {
        ReportData::Figure(fig) => fig,
        other => panic!("Fig12 did not return a figure: {other:?}"),
    };
    assert!(fig.rows.iter().any(|r| r.name == "AVG"));

    let summary = runner.summary();
    assert!(
        summary.compile_hits > 0,
        "figure 12 reuses binaries across its perfect-confidence series: {summary:?}"
    );
    assert_eq!(summary.jobs, 9 * 6, "9 benchmarks × (1 baseline + 5 series)");

    let hardware = measured_parallelism();
    if hardware >= 2.5 {
        assert!(
            summary.parallel_speedup() >= 2.0,
            "4 workers on hardware with {hardware:.1}x measured parallelism \
             should give >= 2x speedup, got {:.2}x ({summary:?})",
            summary.parallel_speedup()
        );
    } else {
        eprintln!(
            "note: only {hardware:.1}x measured hardware parallelism; \
             skipping the >= 2x speedup assertion (got {:.2}x)",
            summary.parallel_speedup()
        );
    }
}

/// Key facts about a job, for comparing orderings.
fn job_key(j: &SweepJob) -> (usize, &'static str, &'static str) {
    (j.bench, j.variant.label(), j.input.label())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Any permutation of the job list comes back in exactly the permuted
    /// submission order, with each result attached to its own job.
    #[test]
    fn randomized_job_order_returns_submission_order(seed in any::<u64>()) {
        let ec = ExperimentConfig::quick(25);
        let benches = suite(ec.scale);
        let mut jobs = reduced_jobs(&ec, benches.len());

        // Fisher-Yates with a splitmix64 stream seeded by the proptest case.
        let mut state = seed;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        for i in (1..jobs.len()).rev() {
            let j = (next() % (i as u64 + 1)) as usize;
            jobs.swap(i, j);
        }

        let expect: Vec<_> = jobs.iter().map(job_key).collect();
        let results = SweepRunner::with_workers(&ec, 4).run(jobs).expect("fault-free sweep");
        let got: Vec<_> = results.iter().map(|r| job_key(&r.job)).collect();
        prop_assert_eq!(got, expect);
    }
}
