//! The failure-model contract of the sweep engine: injected faults become
//! typed, isolated gaps; every non-faulted job is bit-identical to a
//! fault-free run; an aborted sweep resumes from its journal into
//! byte-identical reports — at the library level and through the CLI.

use proptest::prelude::*;
use std::path::{Path, PathBuf};
use std::process::Command;
use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{
    Experiment, ExperimentConfig, FaultKind, FaultPlan, JournalError, SweepJob, SweepRunner,
};
use wishbranch_workloads::{suite, InputSet};

/// A small deterministic job list: two benchmarks × two variants × all
/// three input sets = 12 jobs.
fn reduced_jobs(ec: &ExperimentConfig) -> Vec<SweepJob> {
    let nbench = suite(ec.scale).len();
    let mut jobs = Vec::new();
    for b in [0, nbench - 1] {
        for variant in [BinaryVariant::NormalBranch, BinaryVariant::WishJumpJoinLoop] {
            for input in InputSet::ALL {
                jobs.push(SweepJob::standard(b, variant, input, ec));
            }
        }
    }
    jobs
}

/// A unique scratch directory under the target dir (no tempfile dep).
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = Path::new(env!("CARGO_TARGET_TMPDIR")).join(format!("ft_{tag}_{}", std::process::id()));
    if dir.exists() {
        std::fs::remove_dir_all(&dir).expect("clear stale scratch dir");
    }
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn injected_panic_is_one_failed_cell_and_the_rest_complete() {
    let ec = ExperimentConfig::quick(25);
    let jobs = reduced_jobs(&ec);

    let mut runner = SweepRunner::with_workers(&ec, 2);
    runner.set_fault_plan(FaultPlan::new().inject(4, FaultKind::Panic));
    let faulted = runner.try_run(jobs.clone());

    let clean = SweepRunner::with_workers(&ec, 2)
        .run(jobs.clone())
        .expect("fault-free sweep");

    assert_eq!(faulted.len(), clean.len());
    for (i, result) in faulted.iter().enumerate() {
        if i == 4 {
            let failure = result.as_ref().expect_err("job 4 must fail");
            assert_eq!(failure.index, 4);
            assert_eq!(failure.error.kind(), "worker_panic");
            assert_eq!(failure.attempts, 2, "panics are retried exactly once");
            assert!(
                failure.error.to_string().contains("injected fault"),
                "panic payload must be preserved: {}",
                failure.error
            );
        } else {
            let ok = result.as_ref().expect("non-faulted job must complete");
            assert_eq!(
                ok.outcome.sim, clean[i].outcome.sim,
                "job {i}: fault isolation must not perturb other jobs"
            );
        }
    }

    let summary = runner.summary();
    assert_eq!(summary.failed, 1);
    assert_eq!(summary.retries, 1);
    assert_eq!(summary.jobs, clean.len() as u64 - 1);
    assert_eq!(runner.failures().len(), 1);
    assert!(!runner.aborted());
}

#[test]
fn budget_and_divergence_faults_are_typed_outcomes() {
    let ec = ExperimentConfig::quick(25);
    let jobs = reduced_jobs(&ec);

    let mut runner = SweepRunner::with_workers(&ec, 2);
    runner.set_fault_plan(
        FaultPlan::new()
            .inject(0, FaultKind::Budget)
            .inject(5, FaultKind::Diverge),
    );
    let results = runner.try_run(jobs);

    let budget = results[0].as_ref().expect_err("job 0 must blow its budget");
    assert_eq!(budget.error.kind(), "cycle_budget_exceeded");
    assert_eq!(budget.attempts, 2, "budget overruns are retried once");

    let diverge = results[5].as_ref().expect_err("job 5 must diverge");
    assert_eq!(diverge.error.kind(), "verify_divergence");
    assert_eq!(diverge.attempts, 1, "divergence is deterministic: no retry");
    assert!(
        diverge.error.to_string().contains("addr"),
        "divergence must name the first differing address: {}",
        diverge.error
    );

    for (i, r) in results.iter().enumerate() {
        if i != 0 && i != 5 {
            assert!(r.is_ok(), "job {i} must complete");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// With k seeded faults injected, every non-faulted job's result is
    /// bit-identical, in submission order, to the fault-free run.
    #[test]
    fn seeded_faults_leave_all_other_jobs_bit_identical(seed in any::<u64>()) {
        let ec = ExperimentConfig::quick(20);
        let jobs = reduced_jobs(&ec);
        let plan = FaultPlan::seeded(seed, 3, jobs.len() as u64);
        let faulted_indices: Vec<u64> = plan.iter().map(|(i, _)| i).collect();

        let mut runner = SweepRunner::with_workers(&ec, 3);
        runner.set_fault_plan(plan);
        let faulted = runner.try_run(jobs.clone());

        let clean = SweepRunner::with_workers(&ec, 3)
            .run(jobs)
            .expect("fault-free sweep");

        for (i, result) in faulted.iter().enumerate() {
            if faulted_indices.contains(&(i as u64)) {
                let failure = result.as_ref().err().expect("faulted job must fail");
                prop_assert_eq!(failure.index, i as u64);
            } else {
                let ok = result.as_ref().ok().expect("non-faulted job must complete");
                prop_assert_eq!(
                    &ok.outcome.sim,
                    &clean[i].outcome.sim,
                    "job {} diverged under fault injection",
                    i
                );
                prop_assert_eq!(&ok.outcome.report, &clean[i].outcome.report);
            }
        }
        prop_assert_eq!(runner.failures().len(), faulted_indices.len());
    }
}

#[test]
fn aborted_sweep_resumes_from_journal_into_byte_identical_reports() {
    let ec = ExperimentConfig::quick(30);
    let dir = scratch_dir("lib_resume");
    let journal = dir.join("journal.jsonl");

    // Reference: one uninterrupted, journal-free run.
    let fresh = Experiment::Fig10.run(&SweepRunner::with_workers(&ec, 2));

    // Interrupted run: journal attached, hard abort mid-sweep.
    let mut interrupted = SweepRunner::with_workers(&ec, 2);
    interrupted
        .attach_journal(&journal, false)
        .expect("attach journal");
    interrupted.set_fault_plan(FaultPlan::new().inject(20, FaultKind::Abort));
    let partial = Experiment::Fig10.run(&interrupted);
    assert!(interrupted.aborted(), "abort fault must mark the runner");
    assert!(
        !interrupted.failures().is_empty(),
        "aborted jobs must be recorded as failures"
    );
    assert_ne!(
        partial.to_json(),
        fresh.to_json(),
        "the interrupted report must visibly differ (gaps)"
    );
    assert!(journal.exists(), "completed jobs must be journaled");

    // Resumed run: journaled jobs replay bit-identically, the rest run.
    let resumed_runner = SweepRunner::with_workers(&ec, 2);
    let replayed = resumed_runner
        .attach_journal(&journal, true)
        .expect("attach journal for resume");
    assert!(replayed > 0, "resume must load journaled outcomes");
    let resumed = Experiment::Fig10.run(&resumed_runner);

    assert_eq!(
        resumed.to_json(),
        fresh.to_json(),
        "resumed JSON report must be byte-identical to an uninterrupted run"
    );
    assert_eq!(
        resumed.to_csv(),
        fresh.to_csv(),
        "resumed CSV report must be byte-identical to an uninterrupted run"
    );
    let summary = resumed_runner.summary();
    assert!(
        summary.journal_hits > 0,
        "journaled jobs must be served as journal hits: {summary:?}"
    );
    assert_eq!(summary.failed, 0);
    assert!(!resumed_runner.aborted());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn resume_with_a_changed_scale_is_refused() {
    let dir = scratch_dir("stale_resume");
    let journal = dir.join("journal.jsonl");

    // Journal a couple of completed jobs at scale 30.
    let ec = ExperimentConfig::quick(30);
    let runner = SweepRunner::with_workers(&ec, 2);
    runner
        .attach_journal(&journal, false)
        .expect("attach journal");
    let jobs: Vec<SweepJob> = reduced_jobs(&ec).into_iter().take(2).collect();
    runner.run(jobs).expect("jobs complete");

    // The identical configuration resumes fine (the kill-then-resume path).
    let replayed = SweepRunner::with_workers(&ec, 2)
        .attach_journal(&journal, true)
        .expect("same-config resume");
    assert_eq!(replayed, 2);

    // A changed scale must be a typed refusal — never a silent replay of
    // scale-30 results into a scale-31 report.
    let stale = SweepRunner::with_workers(&ExperimentConfig::quick(31), 2);
    let err = stale
        .attach_journal(&journal, true)
        .expect_err("stale resume must be refused");
    assert!(matches!(err, JournalError::RunMismatch { .. }), "{err}");
    assert!(
        err.to_string().contains("different run configuration"),
        "the refusal must say why: {err}"
    );

    std::fs::remove_dir_all(&dir).ok();
}

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_wishbranch-repro"))
        .args(args)
        .output()
        .expect("spawn wishbranch-repro")
}

#[test]
fn cli_fault_injection_exit_codes_and_kill_then_resume() {
    let base = scratch_dir("cli_resume");
    let fresh_dir = base.join("fresh");
    let resume_dir = base.join("resumed");
    let scale_args = ["--quick", "--scale", "30", "--workers", "2"];

    // Uninterrupted reference run.
    let fresh = repro(
        &[&scale_args[..], &["--report-dir", fresh_dir.to_str().unwrap(), "fig10"]].concat(),
    );
    assert_eq!(fresh.status.code(), Some(0), "{fresh:?}");

    // Injected panic + divergence: gaps, but exit 0 without --strict…
    let lax = repro(&[&scale_args[..], &["--fault-plan", "panic@3,diverge@8", "fig10"]].concat());
    assert_eq!(lax.status.code(), Some(0), "{lax:?}");
    let stdout = String::from_utf8_lossy(&lax.stdout);
    assert!(
        stdout.contains("worker_panic") && stdout.contains("verify_divergence"),
        "failure table must list both injected faults:\n{stdout}"
    );

    // …and exit 3 with --strict.
    let strict = repro(
        &[&scale_args[..], &["--fault-plan", "panic@3,diverge@8", "--strict", "fig10"]].concat(),
    );
    assert_eq!(strict.status.code(), Some(3), "{strict:?}");

    // --resume without --report-dir is a usage error.
    let misuse = repro(&["--resume", "fig10"]);
    assert_eq!(misuse.status.code(), Some(2), "{misuse:?}");

    // Kill mid-sweep via an abort fault: exit 4, journal left behind.
    let killed = repro(
        &[
            &scale_args[..],
            &[
                "--report-dir",
                resume_dir.to_str().unwrap(),
                "--fault-plan",
                "abort@20",
                "fig10",
            ],
        ]
        .concat(),
    );
    assert_eq!(killed.status.code(), Some(4), "{killed:?}");
    assert!(resume_dir.join("journal.jsonl").exists());

    // Resume: exit 0, reports byte-identical to the uninterrupted run.
    let resumed = repro(
        &[
            &scale_args[..],
            &["--report-dir", resume_dir.to_str().unwrap(), "--resume", "fig10"],
        ]
        .concat(),
    );
    assert_eq!(resumed.status.code(), Some(0), "{resumed:?}");
    for file in ["fig10.json", "fig10.csv"] {
        let a = std::fs::read(fresh_dir.join(file)).expect("fresh report");
        let b = std::fs::read(resume_dir.join(file)).expect("resumed report");
        assert_eq!(a, b, "{file}: resumed report must be byte-identical");
    }
    let summary =
        std::fs::read_to_string(resume_dir.join("summary.json")).expect("resumed summary");
    assert!(summary.contains("\"failed\":0"), "{summary}");
    assert!(!summary.contains("\"journal_hits\":0"), "{summary}");
    assert!(summary.contains("\"failures\":[]"), "{summary}");

    // --resume after a scale change is refused as a usage error (exit 2):
    // the journal no longer describes the requested experiment.
    let stale = repro(&[
        "--quick",
        "--scale",
        "40",
        "--workers",
        "2",
        "--report-dir",
        resume_dir.to_str().unwrap(),
        "--resume",
        "fig10",
    ]);
    assert_eq!(stale.status.code(), Some(2), "{stale:?}");
    let stderr = String::from_utf8_lossy(&stale.stderr);
    assert!(
        stderr.contains("different run configuration"),
        "the refusal must say why:\n{stderr}"
    );

    std::fs::remove_dir_all(&base).ok();
}
