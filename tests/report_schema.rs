//! Golden snapshot of the machine-readable report schema
//! (`wishbranch.report/v1`): downstream tooling parses these files, so key
//! names, the kind discriminators and the float format are API. A failure
//! here means the schema version string must be bumped and EXPERIMENTS.md
//! updated, not that the emitter is free to drift.

use wishbranch_core::{
    summary_json, AblationPoint, Experiment, ExperimentConfig, Report, ReportData, SweepRunner,
};

/// A minimal JSON well-formedness checker (no external crates available):
/// consumes one value, returns the remaining input or panics.
fn skip_json<'a>(s: &'a str, whole: &str) -> &'a str {
    let s = s.trim_start();
    let bad = |what: &str| -> ! { panic!("invalid JSON ({what}) in: {whole}") };
    match s.chars().next() {
        Some('{') => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix('}') {
                return r;
            }
            loop {
                rest = skip_json(rest, whole); // key
                rest = rest.trim_start();
                rest = rest.strip_prefix(':').unwrap_or_else(|| bad("missing :"));
                rest = skip_json(rest, whole); // value
                rest = rest.trim_start();
                if let Some(r) = rest.strip_prefix(',') {
                    rest = r;
                } else {
                    return rest.strip_prefix('}').unwrap_or_else(|| bad("missing }"));
                }
            }
        }
        Some('[') => {
            let mut rest = s[1..].trim_start();
            if let Some(r) = rest.strip_prefix(']') {
                return r;
            }
            loop {
                rest = skip_json(rest, whole);
                rest = rest.trim_start();
                if let Some(r) = rest.strip_prefix(',') {
                    rest = r;
                } else {
                    return rest.strip_prefix(']').unwrap_or_else(|| bad("missing ]"));
                }
            }
        }
        Some('"') => {
            let mut chars = s[1..].char_indices();
            while let Some((i, c)) = chars.next() {
                match c {
                    '\\' => {
                        chars.next();
                    }
                    '"' => return &s[1..][i + 1..],
                    _ => {}
                }
            }
            bad("unterminated string")
        }
        Some(c) if c == '-' || c.is_ascii_digit() => {
            let end = s
                .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
                .unwrap_or(s.len());
            &s[end..]
        }
        _ => {
            for lit in ["true", "false", "null"] {
                if let Some(r) = s.strip_prefix(lit) {
                    return r;
                }
            }
            bad("unexpected token")
        }
    }
}

fn assert_valid_json(s: &str) {
    let rest = skip_json(s, s);
    assert!(rest.trim().is_empty(), "trailing garbage after JSON: {rest:?}");
}

fn quick_runner() -> SweepRunner {
    SweepRunner::new(&ExperimentConfig::quick(30))
}

#[test]
fn figure_report_matches_schema_snapshot() {
    let runner = quick_runner();
    let report = Experiment::Fig10.run(&runner);
    let json = report.to_json();
    assert_valid_json(&json);
    // Golden envelope.
    assert!(json.starts_with("{\"schema\":\"wishbranch.report/v1\",\"id\":\"fig10\",\"kind\":\"figure\",\"title\":\""));
    // Golden payload keys, in order.
    assert!(json.contains("\"data\":{\"series\":["));
    assert!(json.contains("],\"rows\":[{\"name\":\""));
    assert!(json.contains("\"values\":["));
    // Floats are always six-decimal.
    let after = json.split("\"values\":[").nth(1).unwrap();
    let first = after.split(&[',', ']'][..]).next().unwrap();
    let (_, frac) = first.split_once('.').expect("values are decimal");
    assert_eq!(frac.len(), 6, "floats use exactly six decimals: {first}");

    // CSV: one header plus one line per row, same column count throughout.
    let csv = report.to_csv();
    let lines: Vec<&str> = csv.lines().collect();
    let ReportData::Figure(fig) = &report.data else { unreachable!() };
    assert_eq!(lines.len(), 1 + fig.rows.len());
    assert_eq!(lines[0].split(',').next(), Some("benchmark"));
    let cols = lines[0].split(',').count();
    assert_eq!(cols, 1 + fig.series.len());
    for l in &lines {
        assert_eq!(l.split(',').count(), cols, "ragged CSV row: {l}");
    }
}

#[test]
fn table_reports_match_schema_snapshot() {
    let runner = quick_runner();
    let t4 = Experiment::Tab4.run(&runner);
    let json = t4.to_json();
    assert_valid_json(&json);
    assert!(json.contains("\"kind\":\"table4\""));
    for key in [
        "\"dynamic_uops\":",
        "\"static_branches\":",
        "\"mispredicts_per_kuop\":",
        "\"upc\":",
        "\"static_wish\":",
        "\"dynamic_wish_loop_pct\":",
    ] {
        assert!(json.contains(key), "tab4 JSON missing {key}");
    }
    let t5 = Experiment::Tab5.run(&runner);
    let json = t5.to_json();
    assert_valid_json(&json);
    assert!(json.contains("\"kind\":\"table5\""));
    for key in ["\"vs_normal_pct\":", "\"best_predicated\":", "\"best\":"] {
        assert!(json.contains(key), "tab5 JSON missing {key}");
    }
    // Table 5 CSV ends with the AVG row.
    let csv = t5.to_csv();
    assert!(csv.lines().last().unwrap().starts_with("AVG,"));
}

#[test]
fn sweep_and_ablation_schema_without_simulation() {
    // Schema-only check on hand-built payloads (a full Fig. 14 sweep is
    // too slow for a schema test).
    let sweep = Report {
        id: "fig14".into(),
        title: "Fig.14: instruction window sweep".into(),
        data: ReportData::ParamSweep {
            param: "window".into(),
            rows: vec![wishbranch_core::SweepRow {
                param: 128,
                series: vec!["wish-jjl".into()],
                avg: vec![0.9],
                avg_nomcf: vec![0.85],
            }],
        },
    };
    let json = sweep.to_json();
    assert_valid_json(&json);
    assert!(json.contains(
        "\"data\":{\"param\":\"window\",\"points\":[{\"param\":128,\"series\":[\"wish-jjl\"],\
         \"avg\":[0.900000],\"avg_nomcf\":[0.850000]}]}"
    ));
    assert_eq!(
        sweep.to_csv(),
        "window,wish-jjl AVG,wish-jjl AVGnomcf\n128,0.900000,0.850000\n"
    );

    let abl = Report::ablation(
        "abl_mshr",
        "MSHR sweep",
        "mshrs",
        vec![AblationPoint {
            param: 8,
            avg_normalized: 0.75,
        }],
    );
    let json = abl.to_json();
    assert_valid_json(&json);
    assert!(json.contains("\"kind\":\"ablation\""));
    assert!(json.contains("{\"param\":8,\"avg_normalized\":0.750000}"));
}

#[test]
fn summary_json_matches_schema_snapshot() {
    let runner = quick_runner();
    let _ = Experiment::Fig10.run(&runner);
    let json = summary_json(&runner.summary());
    assert_valid_json(&json);
    assert!(json.starts_with("{\"schema\":\"wishbranch.summary/v1\",\"jobs\":"));
    for key in [
        "\"workers\":",
        "\"profile_cache\":{\"hits\":",
        "\"compile_cache\":{\"hits\":",
        "\"quarantined\":",
        "\"job_time_s\":",
        "\"wall_time_s\":",
        "\"parallel_speedup\":",
        "\"phase_time_s\":{\"profile\":",
        "\"simulate\":",
        "\"verify\":",
        "\"sim_throughput\":{\"sim_cycles\":",
        "\"retired_uops\":",
        "\"cycles_per_sec\":",
        "\"uops_per_sec\":",
        "\"batch\":{\"size\":",
        "\"batched_jobs\":",
    ] {
        assert!(json.contains(key), "summary JSON missing {key}");
    }
    // The throughput numerators are real simulated work, and the rates
    // are consistent with the recorded simulate-phase time.
    let s = runner.summary();
    assert!(s.sim_cycles > 0, "{s:?}");
    assert!(s.sim_uops > 0, "{s:?}");
    assert!(s.cycles_per_sec() > 0.0, "{s:?}");
    assert!(s.uops_per_sec() > 0.0, "{s:?}");
    // Batching was off for this runner: the dimension is still present,
    // reporting width 1 and zero batched jobs.
    assert!(json.contains("\"batch\":{\"size\":1,\"batched_jobs\":0}"), "{json}");
}

#[test]
fn batched_runner_reports_batch_dimension() {
    let ec = ExperimentConfig::quick(40);
    let mut runner = SweepRunner::with_workers(&ec, 2);
    runner.set_batch(4);
    let _ = Experiment::Fig10.run(&runner);
    let s = runner.summary();
    assert_eq!(s.batch_size, 4);
    assert!(s.batched_jobs > 0, "fig10 grid must produce batched lanes: {s:?}");
    let json = summary_json(&s);
    assert_valid_json(&json);
    assert!(json.contains("\"batch\":{\"size\":4,\"batched_jobs\":"), "{json}");
    let tj = wishbranch_core::throughput_json(&s);
    assert_valid_json(&tj);
    assert!(tj.contains("\"batch_size\":4"), "{tj}");
    assert!(tj.contains("\"batched_jobs\":"), "{tj}");
}

#[test]
fn undefined_rates_render_as_gaps_not_zeros() {
    // A run with zero retired µops has no defined per-million rate: the
    // stats layer must answer NaN (the gap marker), never a fake 0 that
    // downstream averaging would silently absorb.
    let empty = wishbranch_uarch::SimStats::default();
    assert!(empty.per_million_uops(0).is_nan());
    assert!(empty.per_million_uops(7).is_nan());

    // And the Fig. 11/13 emitters must carry that NaN through as an
    // explicit gap: JSON `null`, empty CSV cell.
    let report = Report {
        id: "fig11".into(),
        title: "confidence".into(),
        data: ReportData::Confidence(vec![wishbranch_core::Fig11Row {
            name: "gap-bench".into(),
            low_mispredicted: f64::NAN,
            low_correct: 1.5,
            high_mispredicted: f64::NAN,
            high_correct: 2.0,
        }]),
    };
    let json = report.to_json();
    assert_valid_json(&json);
    assert!(
        json.contains("\"low_mispredicted\":null") && json.contains("\"high_mispredicted\":null"),
        "NaN rates must serialize as null: {json}"
    );
    assert!(json.contains("\"low_correct\":1.500000"));
    let csv = report.to_csv();
    assert!(
        csv.contains("gap-bench,,1.500000,,2.000000"),
        "NaN rates must be empty CSV cells: {csv}"
    );
}

#[test]
fn every_experiment_id_has_a_unique_report_id() {
    // The catalog id is the `--report-dir` file stem; it must match the
    // report's own id so files land where `--list` says they will.
    let runner = SweepRunner::new(&ExperimentConfig::quick(20));
    // Only the cheap experiments actually run here; ids for the rest are
    // checked statically by the catalog unit tests.
    for exp in [Experiment::Fig10, Experiment::Tab4] {
        assert_eq!(exp.run(&runner).id, exp.id());
    }
}
