//! Oracle regression for the non-blocking memory hierarchy: MSHRs (data
//! and instruction side), future-cycle fills, store-to-load forwarding,
//! stride and next-line instruction prefetch, the asynchronous write
//! buffer and the data-port limit are *timing-only* mechanisms, so with
//! the hierarchy enabled (a) the lockstep oracle must still report zero
//! divergences across the whole suite × variant matrix, and (b) every run
//! must retire exactly the architectural state the flat-latency model
//! retires.

use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{
    compile_variant, simulate_unverified, validate_suite_hierarchy, ExperimentConfig,
};
use wishbranch_uarch::MachineConfig;
use wishbranch_workloads::{suite, InputSet};

const SCALE: i32 = 40;

/// The hierarchy configuration under test: the realistic preset —
/// forwarding on, tight-ish MSHR files on both sides, prefetchers, a
/// finite write buffer and limited data ports — so the contended paths
/// actually run.
fn hierarchy_machine(base: &MachineConfig) -> MachineConfig {
    let mut m = base.clone();
    m.mem = wishbranch_mem::MemConfig::realistic_preset();
    m
}

/// The full retirement stream of every suite workload × binary variant,
/// replayed through the lockstep oracle with the hierarchy on: zero
/// divergences.
#[test]
fn hierarchy_suite_replays_clean_through_the_oracle() {
    let ec = ExperimentConfig::quick(SCALE);
    let report = validate_suite_hierarchy(&ec, InputSet::B);
    assert!(
        report.passed(),
        "hierarchy lockstep divergences: {:?}",
        report.failures
    );
    assert_eq!(report.jobs, suite(SCALE).len() * BinaryVariant::ALL.len());
}

/// The hierarchy must retire the exact architectural state of the flat
/// model — registers, predicates and memory — for every suite workload,
/// on both the branch and the fully predicated binary (the variant whose
/// guard-false loads exercise the hierarchy hardest).
#[test]
fn hierarchy_matches_flat_model_architectural_state() {
    let ec = ExperimentConfig::quick(SCALE);
    let real = hierarchy_machine(&ec.machine);
    for bench in suite(SCALE) {
        for variant in [BinaryVariant::NormalBranch, BinaryVariant::BaseMax] {
            let bin = compile_variant(&bench, variant, &ec).expect("compile");
            let flat = simulate_unverified(&bin.program, &bench, InputSet::B, &ec.machine)
                .expect("flat run");
            let hier =
                simulate_unverified(&bin.program, &bench, InputSet::B, &real).expect("hier run");
            let label = format!("{} {variant:?}", bench.name);
            assert_eq!(hier.final_regs, flat.final_regs, "{label}: registers diverged");
            assert_eq!(hier.final_preds, flat.final_preds, "{label}: predicates diverged");
            assert_eq!(hier.final_mem, flat.final_mem, "{label}: memory diverged");
            assert_eq!(
                hier.stats.retired_uops, flat.stats.retired_uops,
                "{label}: timing-only mechanisms must not change the retired stream length"
            );
        }
    }
}
