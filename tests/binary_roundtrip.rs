//! Whole-binary encode/decode round trips: a compiled wish binary survives
//! the 64-bit word encoding, and — the paper's §3.4 backward-compatibility
//! claim — decodes on a "legacy" machine (hint bits ignored) into a program
//! that still computes the same result.

use wishbranch_compiler::{compile, BinaryVariant, CompileOptions};
use wishbranch_core::profile_on;
use wishbranch_isa::encode::{decode, decode_with_options, encode};
use wishbranch_isa::exec::Machine;
use wishbranch_isa::Program;
use wishbranch_workloads::{suite, InputSet};

#[test]
fn compiled_binaries_roundtrip_through_encoding() {
    for bench in suite(30) {
        let profile = profile_on(&bench, InputSet::B).expect("profile");
        for variant in [BinaryVariant::NormalBranch, BinaryVariant::WishJumpJoinLoop] {
            let bin = compile(&bench.module, &profile, variant, &CompileOptions::default());
            for (i, insn) in bin.program.insns().iter().enumerate() {
                let word = encode(insn)
                    .unwrap_or_else(|e| panic!("{} µop {i} ({insn}) failed to encode: {e}", bench.name));
                let back = decode(word)
                    .unwrap_or_else(|e| panic!("{} µop {i} failed to decode: {e}", bench.name));
                assert_eq!(*insn, back, "{} µop {i} changed in round trip", bench.name);
            }
        }
    }
}

#[test]
fn wish_binary_runs_correctly_with_hints_ignored() {
    // Encode the wish binary, decode it with wish hints dropped (a CPU
    // without wish support), and check the architectural result is
    // unchanged.
    for bench in suite(30) {
        let profile = profile_on(&bench, InputSet::B).expect("profile");
        let bin = compile(
            &bench.module,
            &profile,
            BinaryVariant::WishJumpJoinLoop,
            &CompileOptions::default(),
        );
        let legacy_insns: Vec<_> = bin
            .program
            .insns()
            .iter()
            .map(|insn| {
                let word = encode(insn).expect("encodes");
                decode_with_options(word, true).expect("decodes")
            })
            .collect();
        let legacy = Program::from_insns(legacy_insns);
        assert_eq!(legacy.static_stats().wish_branches, 0);

        let inputs = (bench.input_fn)(InputSet::B);
        let run = |program: &Program| {
            let mut m = Machine::new();
            for &(a, v) in &inputs {
                m.mem.insert(a, v);
            }
            m.run(program, u64::MAX / 2).expect("halts").mem
        };
        assert_eq!(
            run(&bin.program),
            run(&legacy),
            "{}: legacy decode changed the architecture",
            bench.name
        );
    }
}
