//! Environment-variable precedence of the request builder: explicit
//! request field > environment variable > default. One `#[test]` function
//! on purpose — `std::env::set_var` is process-global, so splitting these
//! cases across tests would race under the parallel test harness.

use wishbranch_core::{
    default_workers, Experiment, FaultKind, FaultPlan, SweepRequest, BATCH_ENV, FAULT_PLAN_ENV,
    WORKERS_ENV,
};

#[test]
fn explicit_beats_env_beats_default() {
    let req = |f: &dyn Fn(&mut SweepRequest)| {
        let mut r = SweepRequest::new(vec![Experiment::Fig10]);
        f(&mut r);
        r
    };

    // --- workers ---------------------------------------------------------
    std::env::remove_var(WORKERS_ENV);
    let hw = default_workers();
    assert!(hw >= 1);
    assert_eq!(req(&|_| {}).resolved_workers(), hw, "default = available parallelism");

    std::env::set_var(WORKERS_ENV, "3");
    assert_eq!(req(&|_| {}).resolved_workers(), 3, "env fills an unset field");
    assert_eq!(
        req(&|r| r.workers = Some(7)).resolved_workers(),
        7,
        "an explicit field beats the env"
    );

    std::env::set_var(WORKERS_ENV, "zero-ish");
    assert_eq!(
        req(&|_| {}).resolved_workers(),
        hw,
        "an unparseable env value falls back to available parallelism"
    );

    // --- fault plan ------------------------------------------------------
    std::env::remove_var(FAULT_PLAN_ENV);
    let plan = req(&|_| {}).resolved_fault_plan().expect("no env, no plan");
    assert_eq!(plan.iter().count(), 0, "default is an empty plan");

    std::env::set_var(FAULT_PLAN_ENV, "panic@3,budget@8");
    let plan = req(&|_| {}).resolved_fault_plan().expect("env plan parses");
    let faults: Vec<(u64, FaultKind)> = plan.iter().collect();
    assert_eq!(faults, [(3, FaultKind::Panic), (8, FaultKind::Budget)]);

    let explicit = FaultPlan::parse("abort@1").unwrap();
    let plan = req(&|r| r.fault_plan = Some(explicit.clone()))
        .resolved_fault_plan()
        .expect("explicit plan wins");
    let faults: Vec<(u64, FaultKind)> = plan.iter().collect();
    assert_eq!(faults, [(1, FaultKind::Abort)], "explicit field beats the env");

    // An explicit *empty* plan still beats the env — that is how a
    // respawned worker resumes without re-injecting the fault that killed
    // its predecessor.
    let plan = req(&|r| r.fault_plan = Some(FaultPlan::new()))
        .resolved_fault_plan()
        .expect("explicit empty plan wins");
    assert_eq!(plan.iter().count(), 0);

    std::env::set_var(FAULT_PLAN_ENV, "panic@nope");
    let err = req(&|_| {})
        .resolved_fault_plan()
        .expect_err("a malformed env plan is a typed error, not a silent ignore");
    assert_eq!(err.kind(), "bad_field");
    assert!(
        err.to_string().contains(FAULT_PLAN_ENV),
        "the error names the env var: {err}"
    );

    // --- batch width -----------------------------------------------------
    std::env::remove_var(BATCH_ENV);
    assert_eq!(
        req(&|_| {}).resolved_batch().expect("no env, no field"),
        1,
        "default batch width is 1 (batching off)"
    );

    std::env::set_var(BATCH_ENV, "8");
    assert_eq!(req(&|_| {}).resolved_batch().unwrap(), 8, "env fills an unset field");
    assert_eq!(
        req(&|r| r.batch = Some(4)).resolved_batch().unwrap(),
        4,
        "an explicit batch width beats the env"
    );

    std::env::set_var(BATCH_ENV, "0");
    let err = req(&|_| {})
        .resolved_batch()
        .expect_err("a non-positive env batch width is a typed error");
    assert_eq!(err.kind(), "bad_field");
    assert!(err.to_string().contains(BATCH_ENV), "the error names the env var: {err}");

    std::env::set_var(BATCH_ENV, "lots");
    let err = req(&|_| {})
        .resolved_batch()
        .expect_err("an unparseable env batch width is a typed error");
    assert_eq!(err.kind(), "bad_field");

    std::env::remove_var(WORKERS_ENV);
    std::env::remove_var(FAULT_PLAN_ENV);
    std::env::remove_var(BATCH_ENV);
}
