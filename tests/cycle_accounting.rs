//! The cycle-accounting layer's hard invariant, suite-wide: every cycle of
//! every simulation is attributed to exactly one cause, for every
//! benchmark × every binary variant × several machine configurations.
//! (Micro-level category behavior is tested in
//! `crates/uarch/tests/cycle_accounting_micro.rs`.)

use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{
    compile_adaptive_variant, compile_variant, simulate, ExperimentConfig,
};
use wishbranch_uarch::{MachineConfig, PredMechanism, SimStats};
use wishbranch_workloads::{suite, InputSet};

const SCALE: i32 = 40;

fn assert_identities(label: &str, s: &SimStats) {
    assert_eq!(
        s.cycle_accounting.total(),
        s.cycles,
        "{label}: cycle accounting must cover every cycle exactly once: {:?}",
        s.cycle_accounting
    );
    assert_eq!(
        s.fetch_idle_imiss + s.fetch_idle_redirect + s.fetch_idle_queue_full + s.fetch_idle_blocked,
        s.fetch_idle_cycles,
        "{label}: fetch-idle split must cover every fetch-idle cycle"
    );
    let flushes: u64 = s.hot_sites.values().map(|c| c.flushes).sum();
    let avoided: u64 = s.hot_sites.values().map(|c| c.flushes_avoided).sum();
    let gf: u64 = s.hot_sites.values().map(|c| c.guard_false_uops).sum();
    assert_eq!(flushes, s.flushes, "{label}: per-site flushes must sum to the total");
    assert_eq!(avoided, s.flushes_avoided, "{label}: per-site avoided flushes must sum");
    assert_eq!(gf, s.retired_guard_false, "{label}: per-site guard-false µops must sum");
    // rows() must agree with total() (it is what reports print).
    let row_sum: u64 = s.cycle_accounting.rows().iter().map(|&(_, v)| v).sum();
    assert_eq!(row_sum, s.cycles, "{label}: rows() must cover every cycle");
}

#[test]
fn identity_holds_for_every_benchmark_and_variant() {
    let ec = ExperimentConfig::quick(SCALE);
    for bench in suite(SCALE) {
        for variant in BinaryVariant::ALL {
            let bin = compile_variant(&bench, variant, &ec).expect("compile");
            let res =
                simulate(&bin.program, &bench, InputSet::B, &ec.machine).expect("simulate");
            assert_identities(&format!("{} {variant:?}", bench.name), &res.stats);
        }
    }
}

#[test]
fn identity_holds_for_the_adaptive_extension_binary() {
    let ec = ExperimentConfig::quick(SCALE);
    for bench in suite(SCALE) {
        let bin =
            compile_adaptive_variant(&bench, &[InputSet::A, InputSet::C], &ec).expect("compile");
        for input in InputSet::ALL {
            let res = simulate(&bin.program, &bench, input, &ec.machine).expect("simulate");
            assert_identities(&format!("{} adaptive {input}", bench.name), &res.stats);
        }
    }
}

/// The machine configurations the figures sweep over: select-µop
/// predication, oracle knobs, dynamic hammock predication, predicate
/// prediction, a bounded-MSHR flat memory system, and the non-blocking
/// hierarchy (with forwarding, prefetch, and starvation-tight MSHR files —
/// the configurations that can produce the `mshr_full` / `miss_pending`
/// causes).
fn machine_variants() -> Vec<(&'static str, MachineConfig)> {
    let base = ExperimentConfig::quick(SCALE).machine;
    let mut out = Vec::new();
    let mut m = base.clone();
    m.pred_mechanism = PredMechanism::SelectUop;
    out.push(("select-uop", m));
    let mut m = base.clone();
    m.oracles.perfect_confidence = true;
    out.push(("perfect-confidence", m));
    let mut m = base.clone();
    m.oracles.perfect_branch_prediction = true;
    out.push(("perfect-cbp", m));
    let mut m = base.clone();
    m.dhp_enabled = true;
    out.push(("dhp", m));
    let mut m = base.clone();
    m.predicate_prediction = true;
    out.push(("predpred", m));
    let mut m = base.clone();
    m.mem.max_outstanding_misses = 2;
    out.push(("mshr2", m));
    let mut m = base.clone();
    m.mem.realistic = true;
    m.mem.store_forwarding = true;
    out.push(("hierarchy-stlf", m));
    let mut m = base.clone();
    m.mem.realistic = true;
    m.mem.store_forwarding = true;
    m.mem.prefetch_entries = 16;
    out.push(("hierarchy-prefetch", m));
    let mut m = base.clone();
    m.mem.realistic = true;
    m.mem.l1_mshrs = 1;
    m.mem.l2_mshrs = 1;
    out.push(("hierarchy-tight-mshr", m));
    // The full realistic preset: I-MSHRs, next-line instruction prefetch,
    // a finite write buffer and limited data ports — the configurations
    // that can produce the `imiss_pending` / `writebuf_full` causes.
    let mut m = base.clone();
    m.mem = wishbranch_mem::MemConfig::realistic_preset();
    out.push(("hierarchy-realistic-preset", m));
    let mut m = base.clone();
    m.mem.realistic = true;
    m.mem.write_buffer_entries = 2;
    m.mem.data_ports = 1;
    out.push(("hierarchy-writebuf-ports", m));
    let mut m = base;
    m.mem.realistic = true;
    m.mem.i_mshrs = 1;
    m.mem.iprefetch = false;
    out.push(("hierarchy-tight-imshr", m));
    out
}

#[test]
fn identity_holds_across_machine_configurations() {
    let ec = ExperimentConfig::quick(SCALE);
    let benches = suite(SCALE);
    // The loop-light first and loop-heavy last benchmark, as in the
    // engine-equivalence tests.
    for bench in [&benches[0], &benches[benches.len() - 1]] {
        for variant in [BinaryVariant::NormalBranch, BinaryVariant::WishJumpJoinLoop] {
            let bin = compile_variant(bench, variant, &ec).expect("compile");
            for (name, machine) in machine_variants() {
                let res =
                    simulate(&bin.program, bench, InputSet::B, &machine).expect("simulate");
                assert_identities(&format!("{} {variant:?} {name}", bench.name), &res.stats);
            }
        }
    }
}

/// The accounting identity at extreme fetch-queue sizes. The queue
/// capacity is `fetch_width × (pipeline_depth + 2)` (see
/// [`MachineConfig::fetch_queue_cap`]), which floors at 2 entries —
/// `fetch_width ≥ 1`, `depth ≥ 0` — so a literal 1-entry queue is not
/// expressible; the achievable extremes are a 2-entry queue
/// (width 1, depth 0) and a 512-entry queue (width 8, depth 62). A tiny
/// queue back-pressures fetch constantly (`fetch_idle_queue_full`), a
/// huge one never does; every cycle must still be attributed exactly once
/// either way.
#[test]
fn identity_holds_at_extreme_fetch_queue_sizes() {
    let ec = ExperimentConfig::quick(SCALE);
    let benches = suite(SCALE);
    let mut tiny = ec.machine.clone();
    tiny.fetch_width = 1;
    tiny.pipeline_depth = 0;
    assert_eq!(tiny.fetch_queue_cap(), 2);
    let mut huge = ec.machine.clone();
    huge.fetch_width = 8;
    huge.pipeline_depth = 62;
    assert_eq!(huge.fetch_queue_cap(), 512);
    for bench in [&benches[0], &benches[benches.len() - 1]] {
        for variant in [BinaryVariant::NormalBranch, BinaryVariant::WishJumpJoinLoop] {
            let bin = compile_variant(bench, variant, &ec).expect("compile");
            for (name, machine) in [("queue2", &tiny), ("queue512", &huge)] {
                let res =
                    simulate(&bin.program, bench, InputSet::B, machine).expect("simulate");
                assert_identities(&format!("{} {variant:?} {name}", bench.name), &res.stats);
            }
        }
    }
}

#[test]
fn hot_sites_surface_the_flushiest_branches() {
    let ec = ExperimentConfig::quick(SCALE);
    let benches = suite(SCALE);
    let bench = &benches[0];
    let bin = compile_variant(bench, BinaryVariant::NormalBranch, &ec).expect("compile");
    let res = simulate(&bin.program, bench, InputSet::B, &ec.machine).expect("simulate");
    assert!(res.stats.flushes > 0, "normal binary must mispredict sometimes");
    let top = res.stats.top_sites(5);
    assert!(!top.is_empty(), "flushes must be attributed to sites");
    assert!(top.len() <= 5);
    // Sorted by descending score.
    for pair in top.windows(2) {
        assert!(pair[0].1.score() >= pair[1].1.score());
    }
    // The top site carries a nonzero count of something.
    assert!(top[0].1.score() > 0);
}
