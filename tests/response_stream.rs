//! Malformed-input contract of the client-side response decoder:
//! truncated or torn JSONL, unknown `type` values, missing fields and
//! mid-line EOF must every one surface as a *typed* error — a
//! `ResponseLine::parse` `Err` or an `InvalidData` I/O error from
//! `ResponseStream` — never a panic and never silent stream termination.

use std::io::Cursor;

use wishbranch_core::{ResponseLine, ResponseStream, RESPONSE_SCHEMA};

#[test]
fn parse_rejects_malformed_lines_without_panicking() {
    let bad = [
        // Torn mid-value: a crash cut the line short.
        r#"{"schema":"wishbranch.response/v1","type":"job","experiment":"fig10","key":12,"entry":{"key":12,"v"#,
        // Torn mid-key.
        r#"{"schema":"wishbranch.response/v1","type":"don"#,
        // Not JSON at all.
        "listening on 127.0.0.1:7905",
        "",
        "{",
        // Valid JSON, wrong schema.
        r#"{"schema":"wishbranch.request/v1","type":"job"}"#,
        // Valid schema, unknown type.
        r#"{"schema":"wishbranch.response/v1","type":"telemetry","payload":1}"#,
        // Valid schema, no type at all.
        r#"{"schema":"wishbranch.response/v1","key":9}"#,
        // Known type, missing required fields.
        r#"{"schema":"wishbranch.response/v1","type":"accepted"}"#,
        r#"{"schema":"wishbranch.response/v1","type":"job","experiment":"fig10"}"#,
        r#"{"schema":"wishbranch.response/v1","type":"done","jobs":3}"#,
        r#"{"schema":"wishbranch.response/v1","type":"stats","respawns":1}"#,
        r#"{"schema":"wishbranch.response/v1","type":"heartbeat"}"#,
        // Wrong field type where a number is required.
        r#"{"schema":"wishbranch.response/v1","type":"heartbeat","seq":"three"}"#,
    ];
    for line in bad {
        let result = ResponseLine::parse(line);
        assert!(result.is_err(), "must reject, got {result:?} for {line:?}");
    }
}

#[test]
fn stream_surfaces_torn_lines_as_invalid_data_not_silence() {
    // A healthy prefix, then a line torn by a mid-write crash, then more
    // healthy lines: the stream must yield ok, ok, ERR, ok — the error is
    // visible in-band, and iteration keeps going (the caller decides).
    let text = format!(
        "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"accepted\",\"tenant\":\"a\",\"fingerprint\":1}}\n\
         {{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"job\",\"experiment\":\"fig10\",\"key\":7,\"entry\":{{\"key\":7,\"v\":2,\"data\":[1]}}}}\n\
         {{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"job\",\"experiment\":\"fig10\",\"key\":8,\"ent\n\
         {{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"heartbeat\",\"seq\":0}}\n"
    );
    let results: Vec<_> = ResponseStream::from_reader(Cursor::new(text)).collect();
    assert_eq!(results.len(), 4, "every line accounted for, good or bad");
    assert!(results[0].is_ok() && results[1].is_ok());
    let err = results[2].as_ref().expect_err("torn line is an error");
    assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
    assert!(results[3].is_ok(), "the stream recovers after a bad line");
}

#[test]
fn stream_ends_cleanly_on_mid_line_eof() {
    // EOF in the middle of a line (no trailing newline): the final
    // fragment still comes out as a typed InvalidData error, and the
    // iterator then terminates — no panic, no hang.
    let text = format!(
        "{{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"accepted\",\"tenant\":\"a\",\"fingerprint\":1}}\n\
         {{\"schema\":\"{RESPONSE_SCHEMA}\",\"type\":\"done\",\"jobs\":3,\"fail"
    );
    let mut stream = ResponseStream::from_reader(Cursor::new(text));
    assert!(stream.next().expect("first item").is_ok());
    let torn = stream.next().expect("truncated tail yields an item");
    assert_eq!(
        torn.expect_err("mid-line EOF is typed").kind(),
        std::io::ErrorKind::InvalidData
    );
    assert!(stream.next().is_none(), "then the stream ends");
}

#[test]
fn stream_of_empty_input_is_empty_not_an_error() {
    assert!(ResponseStream::from_reader(Cursor::new(String::new()))
        .next()
        .is_none());
}
