//! End-to-end contract of the sweep server (`wishbranch.response/v1`):
//! served results are bit-identical to the in-process engine, a second
//! tenant's identical request is served entirely from the artifact store,
//! a worker killed mid-shard resumes gap-free, and tenant cycle budgets
//! reject at admission. One `#[test]` on purpose: the scenarios share one
//! server (and its warm store), and their order is the point — the store
//! must be cold for the first client and warm for the second.

use std::collections::HashSet;
use std::sync::Arc;

use wishbranch_core::{
    client_stream, run_request, Experiment, FaultPlan, ResponseLine, ServeConfig, Server,
    SweepRequest,
};

fn base_request(tenant: &str) -> SweepRequest {
    let mut req = SweepRequest::new(vec![Experiment::Fig10]);
    req.tenant = tenant.into();
    req.quick = true;
    req.scale = 60;
    req.workers = Some(2);
    req
}

/// Drains one served request into (lines, report payloads by experiment).
struct Outcome {
    accepted: bool,
    rejected: Option<(String, String)>,
    job_keys: Vec<u64>,
    reports: Vec<(String, String)>,
    /// `(respawns, hung_killed, deadline_kills, rejected_requests)` from
    /// the server's `stats` line.
    stats: Option<(u64, u64, u64, u64)>,
    done: Option<(u64, u64, u64, u64, u64, u64, u64)>,
}

fn drive(addr: &str, req: &SweepRequest) -> Outcome {
    let mut out = Outcome {
        accepted: false,
        rejected: None,
        job_keys: Vec::new(),
        reports: Vec::new(),
        stats: None,
        done: None,
    };
    for item in client_stream(addr, req).expect("connect") {
        let (_raw, line) = item.expect("stream");
        match line {
            ResponseLine::Accepted { .. } => out.accepted = true,
            ResponseLine::Rejected { kind, reason } => out.rejected = Some((kind, reason)),
            ResponseLine::Job { key, .. } => out.job_keys.push(key),
            ResponseLine::Report { experiment, report } => out.reports.push((experiment, report)),
            ResponseLine::Heartbeat { .. } => {
                panic!("heartbeats are server-internal, never streamed to clients")
            }
            ResponseLine::Stats {
                respawns,
                hung_killed,
                deadline_kills,
                rejected_requests,
            } => {
                out.stats = Some((respawns, hung_killed, deadline_kills, rejected_requests));
            }
            ResponseLine::Done {
                jobs,
                failed,
                store_hits,
                store_misses,
                profile_misses,
                compile_misses,
                sim_cycles,
                ..
            } => {
                out.done = Some((
                    jobs,
                    failed,
                    store_hits,
                    store_misses,
                    profile_misses,
                    compile_misses,
                    sim_cycles,
                ));
            }
        }
    }
    out
}

#[test]
fn served_sweeps_are_bit_identical_cached_and_crash_safe() {
    let dir = std::env::temp_dir().join(format!("wishbranch-serve-it-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = ServeConfig::new(
        env!("CARGO_BIN_EXE_wishbranch-repro"),
        dir.join("state"),
    );
    cfg.store_dir = Some(dir.join("store"));
    cfg.max_procs = 2;
    cfg.tenant_budgets.insert("broke".into(), 1);
    let server = Arc::new(Server::bind("127.0.0.1:0", cfg).expect("bind"));
    let addr = server.local_addr().expect("local addr").to_string();
    let run_handle = {
        let server = Arc::clone(&server);
        std::thread::spawn(move || server.run())
    };

    // The ground truth: the same typed request through the in-process
    // engine.
    let local = run_request(&base_request("local")).expect("local run");
    assert_eq!(local.reports.len(), 1);
    let local_json = local.reports[0].to_json();

    // 1. Cold store, budgeted tenant: full simulation, report
    //    bit-identical to the in-process engine.
    let first = drive(&addr, &base_request("broke"));
    assert!(first.accepted && first.rejected.is_none());
    let (jobs, failed, store_hits, _, _, _, sim_cycles) = first.done.expect("done line");
    assert_eq!(failed, 0);
    assert_eq!(store_hits, 0, "first run must not find a warm store");
    assert!(sim_cycles > 0, "a cold run simulates for real");
    assert_eq!(jobs as usize, first.job_keys.len());
    let expected_keys: HashSet<u64> = first.job_keys.iter().copied().collect();
    assert_eq!(expected_keys.len(), first.job_keys.len(), "no duplicate jobs");
    assert_eq!(first.reports, [("fig10".to_string(), local_json.clone())]);

    // 2. A different tenant submits the identical sweep: every job —
    //    profile and compile work included — comes from the store, and the
    //    report is still byte-for-byte the same.
    let second = drive(&addr, &base_request("t2"));
    let (jobs2, failed2, hits2, misses2, prof2, comp2, cycles2) = second.done.expect("done line");
    assert_eq!((failed2, misses2), (0, 0));
    assert_eq!(hits2, jobs2, "100% of the second tenant's work is store hits");
    assert_eq!((prof2, comp2), (0, 0), "no profile or compile work repeats");
    assert_eq!(cycles2, 0, "store hits bill no simulated cycles");
    assert_eq!(second.reports, [("fig10".to_string(), local_json.clone())]);

    // 3. A worker killed mid-shard (deterministic abort at global job
    //    index 7) is respawned against its journal: the client stream has
    //    no gaps and no duplicates, and the report is unchanged.
    let mut faulty = base_request("t3");
    faulty.fault_plan = Some(FaultPlan::parse("abort@7").expect("plan"));
    let third = drive(&addr, &faulty);
    let (_, failed3, _, _, _, _, _) = third.done.expect("done line after respawn");
    assert_eq!(failed3, 0, "the injected kill must not surface as a job failure");
    let (respawns3, _, _, _) = third.stats.expect("stats line precedes done");
    assert!(respawns3 >= 1, "the stats line records the respawn");
    let third_keys: HashSet<u64> = third.job_keys.iter().copied().collect();
    assert_eq!(third_keys.len(), third.job_keys.len(), "no duplicate jobs across respawn");
    assert_eq!(third_keys, expected_keys, "gap-free: same job set as the clean run");
    assert_eq!(third.reports, [("fig10".to_string(), local_json.clone())]);

    // 4. The budgeted tenant comes back: its first run spent real cycles
    //    against a budget of 1, so admission now refuses it outright.
    let fourth = drive(&addr, &base_request("broke"));
    assert!(!fourth.accepted);
    let (kind, reason) = fourth.rejected.expect("rejected line");
    assert_eq!(kind, "cycle_budget_exceeded");
    assert!(reason.contains("broke"), "rejection names the tenant: {reason}");
    assert!(fourth.job_keys.is_empty() && fourth.done.is_none());

    // 5. Graceful drain: a request in flight when shutdown begins still
    //    completes (handlers are drained, not killed), `run` returns, and
    //    nothing needs a force-kill.
    let inflight = {
        let addr = addr.clone();
        std::thread::spawn(move || drive(&addr, &base_request("t5")))
    };
    // Let the in-flight request get accepted before the drain starts.
    std::thread::sleep(std::time::Duration::from_millis(300));
    server.shutdown().expect("shutdown");
    let fifth = inflight.join().expect("in-flight client");
    assert!(fifth.accepted, "the drained request was accepted before shutdown");
    let (_, failed5, _, _, _, _, _) = fifth.done.expect("drain lets the stream finish");
    assert_eq!(failed5, 0);
    assert_eq!(fifth.reports, [("fig10".to_string(), local_json)]);
    run_handle
        .join()
        .expect("accept thread")
        .expect("run returns cleanly after a drain");

    let _ = std::fs::remove_dir_all(&dir);
}
