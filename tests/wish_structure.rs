//! Structural invariants of compiled wish binaries, across the whole
//! benchmark suite: wish jumps/joins are forward branches whose
//! low-confidence fall-through path is architecturally complete; wish
//! loops are backward self-branches; per-benchmark wish fingerprints match
//! the workload designs (Table 4's static mix).

use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{compile_variant, ExperimentConfig};
use wishbranch_isa::WishType;
use wishbranch_workloads::suite;

#[test]
fn wish_branch_directions_are_structurally_sound() {
    let ec = ExperimentConfig::quick(30);
    for bench in suite(30) {
        let bin =
            compile_variant(&bench, BinaryVariant::WishJumpJoinLoop, &ec).expect("compile");
        for (i, insn) in bin.program.insns().iter().enumerate() {
            let Some(w) = insn.wish else { continue };
            let target = insn
                .direct_target()
                .expect("wish branches are direct conditional branches");
            match w {
                WishType::Jump | WishType::Join => {
                    assert!(
                        target > i as u32,
                        "{}: wish {w:?} at {i} must be a forward branch (target {target})",
                        bench.name
                    );
                }
                WishType::Loop => {
                    assert!(
                        target <= i as u32,
                        "{}: wish loop at {i} must be backward (target {target})",
                        bench.name
                    );
                }
            }
            assert!(
                insn.guard.is_none(),
                "{}: wish branches are never themselves guarded",
                bench.name
            );
        }
    }
}

#[test]
fn per_benchmark_wish_fingerprints() {
    // Static wish-branch mixes that define each workload (cf. Table 4).
    let ec = ExperimentConfig::quick(30);
    let expect_loops: &[(&str, bool)] = &[
        ("gzip", true),
        ("vpr", true),
        ("mcf", false),
        ("parser", true),
        ("gap", false),
        ("vortex", false),
        ("bzip2", true),
        ("twolf", false),
    ];
    for bench in suite(30) {
        let s = compile_variant(&bench, BinaryVariant::WishJumpJoinLoop, &ec)
            .expect("compile")
            .program
            .static_stats();
        if let Some(&(_, has_loops)) = expect_loops.iter().find(|(n, _)| *n == bench.name) {
            assert_eq!(
                s.wish_loops > 0,
                has_loops,
                "{}: wish-loop fingerprint mismatch ({} loops)",
                bench.name,
                s.wish_loops
            );
        }
        // parser: loops only (DESIGN.md §8.6).
        if bench.name == "parser" {
            assert_eq!(s.wish_jumps + s.wish_joins, 0, "parser has only wish loops");
        }
        // Joins never exceed jumps (each diamond emits one of each;
        // triangles emit jump-only).
        assert!(
            s.wish_joins <= s.wish_jumps,
            "{}: joins ({}) must not exceed jumps ({})",
            bench.name,
            s.wish_joins,
            s.wish_jumps
        );
    }
}

#[test]
fn stats_accounting_is_coherent() {
    use wishbranch_core::run_binary;
    use wishbranch_workloads::InputSet;
    let ec = ExperimentConfig::quick(60);
    for bench in suite(60) {
        let out =
            run_binary(&bench, BinaryVariant::WishJumpJoinLoop, InputSet::B, &ec).expect("run");
        let s = &out.sim.stats;
        assert!(
            s.fetched_uops >= s.retired_uops,
            "{}: cannot retire more than fetched",
            bench.name
        );
        assert!(
            s.retired_guard_false <= s.retired_uops,
            "{}: guard-false subset of retired",
            bench.name
        );
        assert!(
            s.retired_cond_branches >= s.wish_branches_total(),
            "{}: wish branches are conditional branches",
            bench.name
        );
        assert!(
            s.retired_mispredicted <= s.retired_cond_branches + 64,
            "{}: mispredictions bounded by branches (+ret/indirect slack)",
            bench.name
        );
        assert_eq!(
            s.wish_loops.low_mispredicted,
            s.loop_early_exits + s.loop_late_exits + s.loop_no_exits,
            "{}: loop classes partition low-confidence mispredictions",
            bench.name
        );
    }
}
