//! Engine-level batching contract: a [`SweepRunner`] with a batch width
//! above 1 groups compatible jobs into lockstep [`BatchSimulator`] lanes,
//! and every observable output — `SimResult`s, compile reports, summary
//! cache counters, failure isolation — is bit-identical to the scalar
//! path. Batching is a throughput knob, never a semantics knob.

use wishbranch_compiler::BinaryVariant;
use wishbranch_core::{ExperimentConfig, FaultKind, FaultPlan, SweepJob, SweepRunner};
use wishbranch_workloads::InputSet;

/// A sweep shaped like the real figure grids: few binaries, many machine
/// points per binary — exactly what the batch planner groups. Machine
/// variation inside one group mixes ROB sizes and memory models
/// (hierarchy-on, finite MSHRs, flat) so lanes of one batch exercise
/// genuinely different timing behavior.
fn batchable_jobs(ec: &ExperimentConfig) -> Vec<SweepJob> {
    let mut jobs = Vec::new();
    for bench in [0, 3] {
        for variant in [BinaryVariant::NormalBranch, BinaryVariant::WishJumpJoin] {
            for (i, input) in InputSet::ALL.into_iter().enumerate() {
                for k in 0..3usize {
                    let mut machine = ec.machine.clone();
                    match (i + k) % 3 {
                        0 => machine = machine.with_window(48),
                        1 => machine.mem.max_outstanding_misses = 2,
                        _ => machine.mem.realistic = true,
                    }
                    jobs.push(
                        SweepJob::standard(bench, variant, input, ec).with_machine(machine),
                    );
                }
            }
        }
    }
    jobs
}

fn runner(ec: &ExperimentConfig, workers: usize, batch: usize) -> SweepRunner {
    let mut r = SweepRunner::with_workers(ec, workers);
    r.set_batch(batch);
    r
}

#[test]
fn batched_sweep_is_bit_identical_to_scalar() {
    let ec = ExperimentConfig::quick(40);
    let jobs = batchable_jobs(&ec);

    let scalar = runner(&ec, 2, 1).run(jobs.clone()).expect("scalar sweep");
    let batched_runner = runner(&ec, 2, 8);
    let batched = batched_runner.run(jobs.clone()).expect("batched sweep");

    assert_eq!(scalar.len(), batched.len());
    for (i, (s, b)) in scalar.iter().zip(&batched).enumerate() {
        assert_eq!(
            s.outcome.sim, b.outcome.sim,
            "job {i}: batched SimResult diverges from scalar"
        );
        assert_eq!(s.outcome.report, b.outcome.report, "job {i}: report diverges");
        assert_eq!(
            s.outcome.static_stats, b.outcome.static_stats,
            "job {i}: static stats diverge"
        );
        assert!(!b.journal_hit && !b.store_hit);
    }

    // The batch planner actually batched: 4 compile groups × 9 jobs at
    // width 8 → four chunks of 8 plus four singletons on the scalar path.
    let sb = batched_runner.summary();
    assert_eq!(sb.batch_size, 8);
    assert!(
        sb.batched_jobs >= 32,
        "expected most jobs batched, got {}",
        sb.batched_jobs
    );
    assert_eq!(sb.jobs, jobs.len() as u64);
    assert_eq!(sb.failed, 0);
    assert!(sb.sim_uops > 0 && sb.simulate_time.as_nanos() > 0);
}

#[test]
fn batched_oracle_mode_matches_scalar() {
    let ec = ExperimentConfig::quick(30);
    let mut jobs = Vec::new();
    for input in InputSet::ALL {
        for _ in 0..2 {
            jobs.push(SweepJob::standard(1, BinaryVariant::WishJumpJoinLoop, input, &ec));
        }
    }

    let mut scalar_runner = runner(&ec, 1, 1);
    scalar_runner.set_oracle(true);
    let scalar = scalar_runner.run(jobs.clone()).expect("scalar oracle sweep");

    let mut batched_runner = runner(&ec, 1, 6);
    batched_runner.set_oracle(true);
    let batched = batched_runner.run(jobs).expect("batched oracle sweep");

    for (s, b) in scalar.iter().zip(&batched) {
        assert_eq!(s.outcome.sim, b.outcome.sim);
    }
    assert!(batched_runner.summary().batched_jobs == 6);
}

#[test]
fn fault_injected_job_stays_isolated_under_batching() {
    let ec = ExperimentConfig::quick(30);
    let jobs: Vec<SweepJob> = InputSet::ALL
        .into_iter()
        .flat_map(|input| {
            (0..2).map(move |_| input)
        })
        .map(|input| SweepJob::standard(0, BinaryVariant::BaseDef, input, &ec))
        .collect();

    // Reference: fault-free batched run.
    let clean = runner(&ec, 2, 8).run(jobs.clone()).expect("clean sweep");

    // Same sweep with job 2 panicking: that cell fails, every other cell
    // stays bit-identical, and batching stays on for the rest.
    let mut faulty_runner = runner(&ec, 2, 8);
    faulty_runner.set_fault_plan(FaultPlan::new().inject(2, FaultKind::Panic));
    faulty_runner.set_retry_limit(0);
    let faulty = faulty_runner.try_run(jobs);

    for (i, (c, f)) in clean.iter().zip(&faulty).enumerate() {
        if i == 2 {
            let failure = f.as_ref().expect_err("injected panic must fail job 2");
            assert_eq!(failure.index, 2);
        } else {
            let ok = f.as_ref().expect("non-faulted jobs succeed");
            assert_eq!(c.outcome.sim, ok.outcome.sim, "job {i} diverges beside a fault");
        }
    }
    let summary = faulty_runner.summary();
    assert_eq!(summary.failed, 1);
    assert!(summary.batched_jobs > 0, "remaining jobs still batched");
}
