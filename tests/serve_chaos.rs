//! Deterministic chaos harness for the sweep service's resilience layer.
//!
//! Every scenario injects one infrastructure failure mode from a fixed
//! [`ChaosPlan`] — a hung worker, a torn protocol write, a stalled
//! client, a corrupted store artifact, an expired shard deadline — and
//! asserts the contract from ISSUE 8: the client observes either a
//! complete, gap-free, duplicate-free stream whose report is
//! byte-identical to the in-process engine, or a typed error. Never a
//! hang, a partial-silent stream, or a duplicate; and no server thread or
//! worker process stays pinned (each scenario proves the server still
//! answers afterwards).
//!
//! Chaos indices are *worker-local completion order*, so which concrete
//! job a fault strikes varies with scheduling — but faults strike only
//! after that job's journal append and store put, so resume replays are
//! bit-identical and the final reports never vary. That is the
//! determinism contract: chaos perturbs timing, not bytes.

use std::collections::HashSet;
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use wishbranch_core::{
    client_stream, client_stream_resilient, run_request, ChaosPlan, Experiment, ResponseLine,
    ServeConfig, Server, SweepRequest,
};

fn base_request(tenant: &str) -> SweepRequest {
    let mut req = SweepRequest::new(vec![Experiment::Fig10]);
    req.tenant = tenant.into();
    req.quick = true;
    req.scale = 60;
    req.workers = Some(2);
    req
}

fn chaos_config(dir: &std::path::Path, plan: &str) -> ServeConfig {
    let mut cfg = ServeConfig::new(env!("CARGO_BIN_EXE_wishbranch-repro"), dir.join("state"));
    cfg.store_dir = Some(dir.join("store"));
    cfg.max_procs = 2;
    cfg.max_respawns = 3;
    // Tight liveness so a hung worker is detected in test time; the
    // 150 ms heartbeat keeps healthy-but-slow workers alive under it.
    cfg.heartbeat_ms = 150;
    cfg.liveness_timeout_ms = 2_000;
    cfg.write_timeout_ms = 1_000;
    cfg.chaos_plan = ChaosPlan::parse(plan).expect("chaos plan");
    cfg
}

fn start(cfg: ServeConfig) -> (Arc<Server>, String) {
    let server = Arc::new(Server::bind("127.0.0.1:0", cfg).expect("bind"));
    let addr = server.local_addr().expect("local addr").to_string();
    {
        let server = Arc::clone(&server);
        std::thread::spawn(move || {
            let _ = server.run();
        });
    }
    (server, addr)
}

struct Outcome {
    job_keys: Vec<u64>,
    reports: Vec<(String, String)>,
    stats: Option<(u64, u64, u64, u64)>,
    done: Option<(u64, u64)>,
    failures: String,
}

/// Drains one stream (plain or resilient) into an [`Outcome`], asserting
/// stream-level invariants on the way.
fn drain(
    stream: impl Iterator<Item = std::io::Result<(String, ResponseLine)>>,
) -> Outcome {
    let mut out = Outcome {
        job_keys: Vec::new(),
        reports: Vec::new(),
        stats: None,
        done: None,
        failures: String::new(),
    };
    for item in stream {
        let (_raw, line) = item.expect("typed, parseable line");
        match line {
            ResponseLine::Accepted { .. } | ResponseLine::Rejected { .. } => {}
            ResponseLine::Heartbeat { .. } => {
                panic!("heartbeats must be filtered from client streams")
            }
            ResponseLine::Job { key, .. } => out.job_keys.push(key),
            ResponseLine::Report { experiment, report } => out.reports.push((experiment, report)),
            ResponseLine::Stats {
                respawns,
                hung_killed,
                deadline_kills,
                rejected_requests,
            } => out.stats = Some((respawns, hung_killed, deadline_kills, rejected_requests)),
            ResponseLine::Done {
                jobs,
                failed,
                failures,
                ..
            } => {
                out.done = Some((jobs, failed));
                out.failures = failures;
            }
        }
    }
    out
}

fn assert_no_dups(out: &Outcome) -> HashSet<u64> {
    let set: HashSet<u64> = out.job_keys.iter().copied().collect();
    assert_eq!(set.len(), out.job_keys.len(), "duplicate job keys in stream");
    set
}

/// Ground truth for the fixed-seed request: the same sweep through the
/// in-process engine.
fn local_report() -> String {
    let local = run_request(&base_request("local")).expect("local run");
    assert_eq!(local.reports.len(), 1);
    local.reports[0].to_json()
}

#[test]
fn hung_worker_is_killed_respawned_and_stream_stays_bit_identical() {
    let dir = std::env::temp_dir().join(format!("wishbranch-chaos-hang-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_server, addr) = start(chaos_config(&dir, "hang@5"));
    let truth = local_report();

    let out = drain(client_stream(&addr, &base_request("t")).expect("connect"));
    let (jobs, failed) = out.done.expect("done despite the hang");
    assert_eq!(failed, 0);
    let keys = assert_no_dups(&out);
    assert_eq!(keys.len() as u64, jobs, "gap-free: every job announced once");
    assert_eq!(out.reports, [("fig10".to_string(), truth)], "report bit-identical");
    let (respawns, hung_killed, _, _) = out.stats.expect("stats line");
    assert!(hung_killed >= 1, "the hang was detected and killed");
    assert!(respawns >= 1, "the hung worker was respawned");

    // Nothing pinned: a follow-up request on the same server completes
    // promptly (warm store, so this is fast).
    let again = drain(client_stream(&addr, &base_request("t2")).expect("reconnect"));
    assert_eq!(again.done.expect("second done").1, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn torn_line_is_dropped_and_recovered_from_the_respawn() {
    let dir = std::env::temp_dir().join(format!("wishbranch-chaos-torn-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_server, addr) = start(chaos_config(&dir, "torn-line@4"));
    let truth = local_report();

    let out = drain(client_stream(&addr, &base_request("t")).expect("connect"));
    let (jobs, failed) = out.done.expect("done despite the torn write");
    assert_eq!(failed, 0, "a torn write is not a job failure");
    let keys = assert_no_dups(&out);
    assert_eq!(
        keys.len() as u64,
        jobs,
        "the torn job reappears intact from the journal replay"
    );
    assert_eq!(out.reports, [("fig10".to_string(), truth)]);
    let (respawns, _, _, _) = out.stats.expect("stats line");
    assert!(respawns >= 1, "the dead worker was respawned");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corrupt_store_entry_is_quarantined_and_rewritten() {
    let dir = std::env::temp_dir().join(format!("wishbranch-chaos-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_server, addr) = start(chaos_config(&dir, "corrupt-store@3"));
    let truth = local_report();

    // First tenant plants the corruption (after its own journal append,
    // so its stream is unaffected).
    let first = drain(client_stream(&addr, &base_request("t")).expect("connect"));
    assert_eq!(first.done.expect("first done").1, 0);
    assert_eq!(first.reports, [("fig10".to_string(), truth.clone())]);

    // Second tenant trips over it: the poisoned entry reads as a miss, is
    // quarantined to `<key>.corrupt`, and the job re-executes — the
    // stream stays complete and byte-identical.
    let second = drain(client_stream(&addr, &base_request("t2")).expect("connect"));
    let (jobs2, failed2) = second.done.expect("second done");
    assert_eq!(failed2, 0);
    assert_eq!(assert_no_dups(&second).len() as u64, jobs2);
    assert_eq!(second.reports, [("fig10".to_string(), truth.clone())]);
    let quarantined: Vec<_> = walk(&dir.join("store"))
        .into_iter()
        .filter(|p| p.extension().is_some_and(|e| e == "corrupt"))
        .collect();
    assert_eq!(quarantined.len(), 1, "exactly the poisoned entry moved aside");

    // Third tenant is fully warm again: the rewritten entry serves hits.
    let third = drain(client_stream(&addr, &base_request("t3")).expect("connect"));
    assert_eq!(third.done.expect("third done").1, 0);
    assert_eq!(third.reports, [("fig10".to_string(), truth)]);
    let _ = std::fs::remove_dir_all(&dir);
}

fn walk(root: &std::path::Path) -> Vec<std::path::PathBuf> {
    let mut out = Vec::new();
    let Ok(entries) = std::fs::read_dir(root) else {
        return out;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        if path.is_dir() {
            out.extend(walk(&path));
        } else {
            out.push(path);
        }
    }
    out
}

#[test]
fn stalled_client_does_not_pin_the_server_and_a_resilient_client_recovers() {
    let dir = std::env::temp_dir().join(format!("wishbranch-chaos-stall-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_server, addr) = start(chaos_config(&dir, "stall-client@3"));
    let truth = local_report();

    // A raw-socket client that submits the request, reads the number of
    // lines its chaos plan allows, then stops reading and drops the
    // connection — the worst kind of consumer.
    let stall_after = ChaosPlan::parse("stall-client@3")
        .unwrap()
        .stall_after()
        .unwrap();
    {
        let mut sock = TcpStream::connect(&addr).expect("connect");
        let mut line = base_request("staller").to_json();
        line.push('\n');
        sock.write_all(line.as_bytes()).expect("send request");
        let mut reader = BufReader::new(sock.try_clone().expect("clone"));
        let mut buf = String::new();
        for _ in 0..stall_after {
            buf.clear();
            if reader.read_line(&mut buf).expect("read") == 0 {
                break;
            }
        }
        // Stall: hold the socket open without reading, then vanish.
        std::thread::sleep(Duration::from_millis(500));
        drop(reader);
    }

    // The server is not pinned: a well-behaved client on the same server
    // gets a complete, correct stream within test time.
    let started = Instant::now();
    let out = drain(client_stream(&addr, &base_request("t")).expect("connect"));
    assert_eq!(out.done.expect("done").1, 0);
    assert_eq!(out.reports, [("fig10".to_string(), truth.clone())]);
    assert!(
        started.elapsed() < Duration::from_secs(120),
        "follow-up request must not starve behind the stalled one"
    );

    // And a resilient client whose connection drops mid-stream recovers a
    // gap-free, duplicate-free stream by reconnecting: the merged stream
    // is indistinguishable from an unperturbed one.
    let resilient = drain(
        client_stream_resilient(&addr, &base_request("t2"), 3).expect("resilient connect"),
    );
    let (jobs, failed) = resilient.done.expect("resilient done");
    assert_eq!(failed, 0);
    assert_eq!(assert_no_dups(&resilient).len() as u64, jobs);
    assert_eq!(resilient.reports, [("fig10".to_string(), truth)]);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn shard_deadline_kills_a_hung_worker_with_a_typed_failure() {
    let dir = std::env::temp_dir().join(format!("wishbranch-chaos-ddl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // Liveness is set well past the shard deadline (budget_wall_ms 2000
    // x factor 2 = 4 s), so the deadline — not hang detection — must be
    // what ends the hung shard; the discriminating assertions below are
    // `deadline_kills` (not `hung_killed`) and the typed failure kind.
    // It stays finite because the chaos plan also strikes the follow-up
    // request's worker, which only liveness can recover.
    let mut cfg = chaos_config(&dir, "hang@0");
    cfg.liveness_timeout_ms = 10_000;
    cfg.shard_deadline_factor = 2;
    let (_server, addr) = start(cfg);

    let mut req = base_request("t");
    req.budgets.wall_ms = Some(2_000);
    let out = drain(client_stream(&addr, &req).expect("connect"));
    let (_, failed) = out.done.expect("done line with the typed failure");
    assert!(failed >= 1, "the deadline kill surfaces as a shard failure");
    assert!(
        out.failures.contains("shard_deadline_exceeded"),
        "typed failure kind, got: {}",
        out.failures
    );
    let (_, _, deadline_kills, _) = out.stats.expect("stats line");
    assert!(deadline_kills >= 1, "the stats line records the deadline kill");

    // The killed worker is gone, not pinned: the server still serves.
    let mut clean = base_request("t2");
    clean.budgets.wall_ms = None;
    let again = drain(client_stream(&addr, &clean).expect("connect"));
    assert_eq!(again.done.expect("done").1, 0);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn oversized_and_silent_requests_get_typed_rejections() {
    let dir = std::env::temp_dir().join(format!("wishbranch-chaos-rej-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut cfg = chaos_config(&dir, "");
    cfg.max_request_bytes = 256;
    cfg.read_timeout_ms = 400;
    let (_server, addr) = start(cfg);

    // A request line over the cap is refused with a typed line, not
    // buffered without bound.
    let mut sock = TcpStream::connect(&addr).expect("connect");
    let huge = format!("{}\n", "x".repeat(4096));
    sock.write_all(huge.as_bytes()).expect("send");
    let mut line = String::new();
    BufReader::new(sock).read_line(&mut line).expect("read rejection");
    let parsed = ResponseLine::parse(line.trim()).expect("typed rejection");
    match parsed {
        ResponseLine::Rejected { kind, .. } => assert_eq!(kind, "request_too_large"),
        other => panic!("expected rejection, got {other:?}"),
    }

    // A client that connects and never finishes its request line is cut
    // off by the read timeout with a typed line.
    let sock = TcpStream::connect(&addr).expect("connect");
    let mut line = String::new();
    BufReader::new(sock).read_line(&mut line).expect("read rejection");
    let parsed = ResponseLine::parse(line.trim()).expect("typed rejection");
    match parsed {
        ResponseLine::Rejected { kind, .. } => assert_eq!(kind, "request_timeout"),
        other => panic!("expected rejection, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chaos_perturbed_journals_replay_bit_identically_via_resume() {
    // Determinism acceptance: rerun the served request locally with
    // --resume against the chaos run's journal — every journal entry must
    // replay bit-identically (journal hits, no fresh work, same report).
    let dir = std::env::temp_dir().join(format!("wishbranch-chaos-replay-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (_server, addr) = start(chaos_config(&dir, "torn-line@2,hang@6"));
    let truth = local_report();

    let out = drain(client_stream(&addr, &base_request("t")).expect("connect"));
    assert_eq!(out.done.expect("done").1, 0);
    assert_eq!(out.reports, [("fig10".to_string(), truth.clone())]);

    // Find the shard journal the chaos run left behind and replay it.
    let journal = walk(&dir.join("state"))
        .into_iter()
        .find(|p| p.file_name().is_some_and(|n| n == "journal.jsonl"))
        .expect("the chaos run journaled");
    let mut replay_req = base_request("t");
    replay_req.fault_plan = None;
    let runner = replay_req.build_runner().expect("runner");
    runner
        .attach_journal(&journal, true)
        .expect("resume against the chaos journal");
    let report = Experiment::Fig10.run(&runner);
    assert_eq!(report.to_json(), truth, "resume replay is bit-identical");
    let summary = runner.summary();
    assert_eq!(
        summary.journal_hits, summary.jobs,
        "every job replays from the journal; chaos never corrupted it"
    );
    let _ = std::fs::remove_dir_all(&dir);
}
